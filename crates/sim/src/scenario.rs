//! Engine-independent scenario descriptions.
//!
//! The paper's claims (Sections 4, 6–7) are about *one* protocol under
//! *many* conditions: different overlays, initial value distributions,
//! crash waves, churn, and communication failures. A [`Scenario`] captures
//! exactly those conditions — and nothing about how time is modelled — so
//! the *same* value drives both simulation engines:
//!
//! * the cycle-driven engine ([`crate::experiment::ExperimentConfig`] is a
//!   thin wrapper adding a cycle budget and an aggregate choice), and
//! * the event-driven engine ([`crate::event::EventConfig`] adds message
//!   delay, clock drift, and a duration).
//!
//! This is the engine-vs-condition separation stressed by the dynamic
//! aggregation literature: robustness claims only mean something when the
//! practical protocol meets the same adversity in every time model.
//!
//! # Examples
//!
//! One scenario, two engines:
//!
//! ```
//! use epidemic_sim::scenario::{OverlaySpec, Scenario, ValueInit};
//! use epidemic_sim::experiment::{AggregateSetup, ExperimentConfig};
//! use epidemic_sim::event::EventConfig;
//!
//! let scenario = Scenario {
//!     n: 200,
//!     overlay: OverlaySpec::Complete,
//!     values: ValueInit::Linear,
//!     ..Scenario::default()
//! };
//!
//! // Cycle-driven: 30 synchronous cycles.
//! let cycle_out = ExperimentConfig {
//!     scenario: scenario.clone(),
//!     cycles: 30,
//!     aggregate: AggregateSetup::Average,
//! }
//! .run(1);
//!
//! // Event-driven: the same conditions under delay and drift.
//! let event_out = EventConfig {
//!     scenario,
//!     ..EventConfig::default()
//! }
//! .run(1);
//!
//! let truth = 199.0 / 2.0;
//! assert!((cycle_out.mean_final_estimate() - truth).abs() < 1.0);
//! let est = event_out.mean_epoch_estimate(0).unwrap();
//! assert!((est - truth).abs() < 1.0);
//! ```

use crate::failure::{CommFailure, FailureModel};
use epidemic_common::rng::Xoshiro256;
use epidemic_topology::TopologyKind;

/// Which overlay the aggregation runs over.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OverlaySpec {
    /// Implicit complete graph.
    Complete,
    /// A static topology generated once at experiment start.
    Static(TopologyKind),
    /// A NEWSCAST overlay with view size `c`, gossiping membership in
    /// every cycle alongside the aggregation.
    ///
    /// Both engines simulate the membership protocol for real: the cycle
    /// engine advances a whole-network [`epidemic_newscast::Overlay`] each
    /// cycle, the event engine runs per-node membership state machines
    /// whose view exchanges travel through the same delay/loss model as
    /// aggregation messages (idealizable via
    /// [`MembershipModel::Idealized`](crate::event::MembershipModel) for
    /// ablations).
    Newscast {
        /// View size (the paper uses `c = 30`).
        c: usize,
    },
}

/// Initial distribution of local values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ValueInit {
    /// One uniformly chosen node holds `total`, all others hold zero — the
    /// paper's *peak* distribution, the worst case for robustness.
    Peak {
        /// Value held by the single peak node.
        total: f64,
    },
    /// Independent uniform values in `[lo, hi)`.
    Uniform {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// Every node holds the same constant.
    Constant(f64),
    /// Node `i` holds `i as f64` (deterministic, handy in tests).
    Linear,
}

impl ValueInit {
    /// Draws the initial local values for `n` nodes.
    pub fn materialize(self, n: usize, rng: &mut Xoshiro256) -> Vec<f64> {
        match self {
            ValueInit::Peak { total } => {
                let mut v = vec![0.0; n];
                v[rng.index(n)] = total;
                v
            }
            ValueInit::Uniform { lo, hi } => {
                (0..n).map(|_| lo + rng.next_f64() * (hi - lo)).collect()
            }
            ValueInit::Constant(c) => vec![c; n],
            ValueInit::Linear => (0..n).map(|i| i as f64).collect(),
        }
    }
}

/// Engine-independent description of the conditions an experiment runs
/// under: population, overlay, initial values, and failure models.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Initial network size.
    pub n: usize,
    /// Overlay specification.
    pub overlay: OverlaySpec,
    /// Initial value distribution (ignored by COUNT-style aggregates).
    pub values: ValueInit,
    /// Node failure schedule, indexed by cycle.
    pub failure: FailureModel,
    /// Communication failure probabilities.
    pub comm: CommFailure,
    /// NEWSCAST-only warm-up cycles before the measurement starts
    /// (cycle-driven engine only; the event engine starts gossiping views
    /// at tick 0, concurrently with epoch 0).
    pub newscast_warmup: u32,
    /// Local value assigned to nodes that join through churn.
    pub joiner_value: f64,
}

impl Default for Scenario {
    fn default() -> Self {
        Scenario {
            n: 1_000,
            overlay: OverlaySpec::Complete,
            values: ValueInit::Peak { total: 1_000.0 },
            failure: FailureModel::None,
            comm: CommFailure::NONE,
            newscast_warmup: 5,
            joiner_value: 0.0,
        }
    }
}

impl Scenario {
    /// Checks internal consistency, shared by both engines.
    ///
    /// # Panics
    ///
    /// Panics if the scenario is degenerate (`n < 2`) or inconsistent
    /// (churn over an overlay that cannot grow).
    pub fn validate(&self) {
        assert!(self.n >= 2, "experiment needs at least two nodes");
        assert!(
            !self.failure.needs_growable_overlay()
                || matches!(self.overlay, OverlaySpec::Newscast { .. }),
            "churn requires a NEWSCAST overlay"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        Scenario::default().validate();
    }

    #[test]
    #[should_panic(expected = "at least two nodes")]
    fn tiny_network_rejected() {
        Scenario {
            n: 1,
            ..Scenario::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "churn requires a NEWSCAST overlay")]
    fn churn_needs_growable_overlay() {
        Scenario {
            failure: FailureModel::Churn { per_cycle: 5 },
            ..Scenario::default()
        }
        .validate();
    }

    #[test]
    fn value_init_materializes() {
        let mut rng = Xoshiro256::seed_from_u64(1);
        let peak = ValueInit::Peak { total: 10.0 }.materialize(5, &mut rng);
        assert_eq!(peak.iter().sum::<f64>(), 10.0);
        assert_eq!(peak.iter().filter(|&&v| v != 0.0).count(), 1);
        let uni = ValueInit::Uniform { lo: 1.0, hi: 2.0 }.materialize(100, &mut rng);
        assert!(uni.iter().all(|&v| (1.0..2.0).contains(&v)));
        assert_eq!(ValueInit::Constant(3.0).materialize(3, &mut rng), [3.0; 3]);
        assert_eq!(ValueInit::Linear.materialize(3, &mut rng), [0.0, 1.0, 2.0]);
    }
}
