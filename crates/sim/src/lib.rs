//! PeerSim-style simulation engines for epidemic aggregation.
//!
//! The paper's evaluation (Section 7) was produced with PeerSim, the
//! authors' cycle-driven overlay simulator. This crate rebuilds that
//! substrate in Rust and adds an event-driven engine for the asynchronous
//! aspects the cycle model abstracts away:
//!
//! * [`network`] — the cycle-driven kernel: per-cycle random-permutation
//!   push-pull exchanges over SoA state fields, with link-failure and
//!   asymmetric message-loss injection.
//! * [`failure`] — failure schedules: proportional crashes, sudden death,
//!   churn (crash + join at constant size).
//! * [`experiment`] — one-call experiment driver gluing topology/newscast,
//!   network state, failure models and per-cycle metrics; plus a
//!   thread-pooled repetition runner.
//! * [`event`] — event-driven engine (message delay, clock drift, loss,
//!   timeouts) driving the sans-io [`epidemic_aggregation::GossipNode`];
//!   measures epoch-synchronization spread.
//! * [`metrics`] — convergence factors and exchange-count distributions
//!   (the `1 + Poisson(1)` cost analysis of Section 4.5).
//!
//! # Examples
//!
//! ```
//! use epidemic_sim::experiment::{AggregateSetup, ExperimentConfig, OverlaySpec, ValueInit};
//!
//! let config = ExperimentConfig {
//!     n: 1000,
//!     overlay: OverlaySpec::Newscast { c: 30 },
//!     cycles: 20,
//!     values: ValueInit::Peak { total: 1000.0 },
//!     aggregate: AggregateSetup::Average,
//!     ..ExperimentConfig::default()
//! };
//! let outcome = config.run(42);
//! // Variance decays by roughly 1/(2 sqrt e) per cycle.
//! assert!(outcome.variance[20] < outcome.variance[0] * 1e-8);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod event;
pub mod experiment;
pub mod failure;
pub mod metrics;
pub mod network;
pub mod session;

pub use experiment::{AggregateSetup, ExperimentConfig, OverlaySpec, RunOutcome, ValueInit};
pub use failure::{CommFailure, FailureModel};
pub use network::{FieldId, Network};
pub use session::{Session, SessionConfig, SessionEpoch};
