//! PeerSim-style simulation engines for epidemic aggregation.
//!
//! The paper's evaluation (Section 7) was produced with PeerSim, the
//! authors' cycle-driven overlay simulator. This crate rebuilds that
//! substrate in Rust and adds an event-driven engine for the asynchronous
//! aspects the cycle model abstracts away:
//!
//! * [`scenario`] — engine-independent experiment conditions
//!   ([`Scenario`]): overlay, initial values, crash/churn schedule,
//!   communication failures. One `Scenario` value drives both engines.
//! * [`network`] — the cycle-driven kernel: per-cycle random-permutation
//!   push-pull exchanges over SoA state fields, with link-failure and
//!   asymmetric message-loss injection.
//! * [`failure`] — failure schedules: proportional crashes, sudden death,
//!   churn (crash + join at constant size).
//! * [`experiment`] — one-call cycle-driven experiment driver: a thin
//!   wrapper adding a cycle budget and an aggregate to a [`Scenario`];
//!   plus a thread-pooled repetition runner.
//! * [`event`] — event-driven engine (message delay, clock drift, loss,
//!   timeouts) driving the sans-io [`epidemic_aggregation::GossipNode`]
//!   under the same [`Scenario`] conditions; measures
//!   epoch-synchronization spread.
//! * [`metrics`] — convergence factors and exchange-count distributions
//!   (the `1 + Poisson(1)` cost analysis of Section 4.5).
//!
//! # Examples
//!
//! ```
//! use epidemic_sim::experiment::{AggregateSetup, ExperimentConfig};
//! use epidemic_sim::scenario::{OverlaySpec, Scenario, ValueInit};
//!
//! let config = ExperimentConfig {
//!     scenario: Scenario {
//!         n: 1000,
//!         overlay: OverlaySpec::Newscast { c: 30 },
//!         values: ValueInit::Peak { total: 1000.0 },
//!         ..Scenario::default()
//!     },
//!     cycles: 20,
//!     aggregate: AggregateSetup::Average,
//! };
//! let outcome = config.run(42);
//! // Variance decays by roughly 1/(2 sqrt e) per cycle.
//! assert!(outcome.variance[20] < outcome.variance[0] * 1e-8);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod event;
pub mod experiment;
pub mod failure;
pub mod metrics;
pub mod network;
mod pool;
pub mod scenario;
pub mod session;

pub use event::{EventConfig, EventOutcome, EventSim};
pub use experiment::{AggregateSetup, ExperimentConfig, RunOutcome};
pub use failure::{CommFailure, FailureModel};
pub use network::{FieldId, Network};
pub use scenario::{OverlaySpec, Scenario, ValueInit};
pub use session::{Session, SessionConfig, SessionEpoch};
