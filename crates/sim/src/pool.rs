//! Worker-pool fan-out shared by the engines' `run_many` entry points.

/// Runs `run(seed)` for every seed across OS threads, returning results in
/// seed order. Falls back to sequential execution for tiny workloads.
pub(crate) fn parallel_map_seeds<T, F>(seeds: &[u64], run: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(seeds.len().max(1));
    if workers <= 1 || seeds.len() <= 1 {
        return seeds.iter().map(|&s| run(s)).collect();
    }
    let mut slots: Vec<Option<T>> = (0..seeds.len()).map(|_| None).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slot_refs: Vec<std::sync::Mutex<&mut Option<T>>> =
        slots.iter_mut().map(std::sync::Mutex::new).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if idx >= seeds.len() {
                    break;
                }
                let outcome = run(seeds[idx]);
                **slot_refs[idx].lock().unwrap() = Some(outcome);
            });
        }
    });
    drop(slot_refs);
    slots
        .into_iter()
        .map(|s| s.expect("worker missed a seed"))
        .collect()
}
