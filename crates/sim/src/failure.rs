//! Failure schedules (Sections 6 and 7).
//!
//! * [`FailureModel::ProportionalCrash`] — before every cycle a fixed
//!   proportion `P_f` of the *remaining* nodes crashes (the Theorem 1
//!   model, worst case because it strikes while variance is maximal).
//! * [`FailureModel::SuddenDeath`] — a single mass crash of a fraction of
//!   the network at a chosen cycle (Figure 6(a)).
//! * [`FailureModel::Churn`] — every cycle, `per_cycle` random nodes crash
//!   and the same number of fresh nodes joins: constant size, dynamic
//!   composition (Figure 6(b)).
//! * [`CommFailure`] — link failure probability and per-message loss
//!   probability applied to every exchange (Figures 7(a) and 7(b)).

/// Node-level failure schedule applied at the start of each cycle.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum FailureModel {
    /// No node failures.
    #[default]
    None,
    /// Crash `round(p_f × alive)` uniformly random nodes before every cycle.
    ProportionalCrash {
        /// Per-cycle crash proportion `P_f ∈ [0, 1)`.
        p_f: f64,
    },
    /// Crash `round(fraction × alive)` nodes at the start of cycle
    /// `at_cycle` (0-based), once.
    SuddenDeath {
        /// Fraction of live nodes to crash.
        fraction: f64,
        /// Cycle index at which the crash strikes.
        at_cycle: u32,
    },
    /// Crash `per_cycle` random nodes and add `per_cycle` fresh joiners
    /// before every cycle; network size stays constant.
    Churn {
        /// Nodes substituted per cycle.
        per_cycle: usize,
    },
}

impl FailureModel {
    /// Number of crashes to inflict at the start of `cycle`, given the
    /// current live population.
    pub fn crashes_at(&self, cycle: u32, alive: usize) -> usize {
        match *self {
            FailureModel::None => 0,
            FailureModel::ProportionalCrash { p_f } => (p_f * alive as f64).round() as usize,
            FailureModel::SuddenDeath { fraction, at_cycle } => {
                if cycle == at_cycle {
                    (fraction * alive as f64).round() as usize
                } else {
                    0
                }
            }
            FailureModel::Churn { per_cycle } => per_cycle.min(alive),
        }
    }

    /// Number of fresh joiners to add at the start of `cycle`.
    pub fn joins_at(&self, _cycle: u32) -> usize {
        match *self {
            FailureModel::Churn { per_cycle } => per_cycle,
            _ => 0,
        }
    }

    /// Whether this model ever adds nodes (requires a growable overlay,
    /// i.e. NEWSCAST).
    pub fn needs_growable_overlay(&self) -> bool {
        matches!(self, FailureModel::Churn { .. })
    }
}

/// Communication failure probabilities applied to every exchange.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CommFailure {
    /// Link failure probability `P_d` (whole exchange dropped).
    pub link_failure: f64,
    /// Per-message loss probability (request and reply independently).
    pub message_loss: f64,
}

impl CommFailure {
    /// No communication failures.
    pub const NONE: CommFailure = CommFailure {
        link_failure: 0.0,
        message_loss: 0.0,
    };

    /// Only link failures with probability `p_d`.
    pub fn links(p_d: f64) -> Self {
        CommFailure {
            link_failure: p_d,
            message_loss: 0.0,
        }
    }

    /// Only message loss with probability `p_l` per message.
    pub fn messages(p_l: f64) -> Self {
        CommFailure {
            link_failure: 0.0,
            message_loss: p_l,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_crashes() {
        let m = FailureModel::None;
        for cycle in 0..40 {
            assert_eq!(m.crashes_at(cycle, 1000), 0);
            assert_eq!(m.joins_at(cycle), 0);
        }
        assert!(!m.needs_growable_overlay());
    }

    #[test]
    fn proportional_crash_follows_population() {
        let m = FailureModel::ProportionalCrash { p_f: 0.1 };
        assert_eq!(m.crashes_at(0, 1000), 100);
        assert_eq!(m.crashes_at(5, 900), 90);
        assert_eq!(m.crashes_at(5, 7), 1);
    }

    #[test]
    fn sudden_death_fires_once() {
        let m = FailureModel::SuddenDeath {
            fraction: 0.5,
            at_cycle: 7,
        };
        assert_eq!(m.crashes_at(6, 1000), 0);
        assert_eq!(m.crashes_at(7, 1000), 500);
        assert_eq!(m.crashes_at(8, 500), 0);
    }

    #[test]
    fn churn_is_symmetric_and_growable() {
        let m = FailureModel::Churn { per_cycle: 50 };
        assert_eq!(m.crashes_at(3, 1000), 50);
        assert_eq!(m.joins_at(3), 50);
        assert!(m.needs_growable_overlay());
        // Cannot crash more nodes than are alive.
        assert_eq!(m.crashes_at(3, 20), 20);
    }

    #[test]
    fn comm_failure_constructors() {
        assert_eq!(CommFailure::NONE.link_failure, 0.0);
        assert_eq!(CommFailure::links(0.3).link_failure, 0.3);
        assert_eq!(CommFailure::links(0.3).message_loss, 0.0);
        assert_eq!(CommFailure::messages(0.2).message_loss, 0.2);
    }
}
