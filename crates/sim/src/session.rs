//! Multi-epoch protocol sessions.
//!
//! [`crate::experiment`] runs a single epoch — enough for the paper's
//! figures, which all measure one epoch in isolation. A [`Session`] runs
//! the *continuous* protocol of Section 4: epoch after epoch over one
//! persistent NEWSCAST overlay, with COUNT leaders self-electing at
//! `P_lead = C/N̂` from the previous epoch's size estimate, fresh local
//! values picked up at every restart, and churn carrying across epoch
//! boundaries. This is the cycle-driven twin of the sans-io
//! [`epidemic_aggregation::GossipNode`] runtime.
//!
//! # Examples
//!
//! ```
//! use epidemic_aggregation::AggregateKind;
//! use epidemic_sim::session::{Session, SessionConfig};
//! use epidemic_sim::failure::{CommFailure, FailureModel};
//!
//! let mut session = Session::new(
//!     SessionConfig {
//!         n: 500,
//!         view_size: 20,
//!         gamma: 25,
//!         aggregate: AggregateKind::Count,
//!         count_concurrency: 10.0,
//!         joiner_value: 0.0,
//!     },
//!     |_| 0.0,
//!     7,
//! );
//! let outcome = session.run_epoch(FailureModel::None, CommFailure::NONE);
//! let estimate = outcome.mean_estimate().unwrap();
//! assert!((estimate - 500.0).abs() < 50.0);
//! ```

use crate::failure::{CommFailure, FailureModel};
use crate::network::{CycleOptions, FieldId, Network};
use epidemic_aggregation::aggregates::AggregateKind;
use epidemic_aggregation::estimator;
use epidemic_aggregation::instance::{InitPolicy, InstanceSpec};
use epidemic_common::rng::Xoshiro256;
use epidemic_common::stats;
use epidemic_newscast::Overlay;

/// Static parameters of a session.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionConfig {
    /// Initial network size.
    pub n: usize,
    /// NEWSCAST view size `c`.
    pub view_size: usize,
    /// Cycles per epoch (γ).
    pub gamma: u32,
    /// Aggregate computed each epoch.
    pub aggregate: AggregateKind,
    /// Expected concurrent COUNT instances (`C` of `P_lead = C/N̂`).
    pub count_concurrency: f64,
    /// Local value assigned to nodes that join through churn.
    pub joiner_value: f64,
}

enum SessionField {
    Scalar { field: FieldId, init: InitPolicy },
    Map { field: FieldId },
}

/// A running multi-epoch aggregation session.
pub struct Session {
    config: SessionConfig,
    overlay: Overlay,
    net: Network,
    fields: Vec<SessionField>,
    local_values: Vec<f64>,
    size_estimate: f64,
    epoch: u64,
    clock: u32,
    rng: Xoshiro256,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("epoch", &self.epoch)
            .field("alive", &self.net.alive_count())
            .field("aggregate", &self.config.aggregate)
            .finish()
    }
}

/// Output of one epoch of a session.
#[derive(Debug, Clone)]
pub struct SessionEpoch {
    /// Epoch index (starting at 0).
    pub epoch: u64,
    /// Number of COUNT leaders elected this epoch (0 for aggregates that
    /// need no COUNT instance).
    pub leaders: usize,
    /// Live node count when the epoch completed.
    pub alive: usize,
    /// Per-node aggregate estimates at epoch end (live participating
    /// nodes with a usable estimate).
    pub estimates: Vec<f64>,
}

impl SessionEpoch {
    /// Mean of the finite per-node estimates, or `None` if none exist.
    pub fn mean_estimate(&self) -> Option<f64> {
        let finite: Vec<f64> = self
            .estimates
            .iter()
            .copied()
            .filter(|v| v.is_finite())
            .collect();
        if finite.is_empty() {
            None
        } else {
            Some(stats::mean(&finite))
        }
    }
}

impl Session {
    /// Creates a session of `config.n` nodes whose initial local values
    /// come from `values(i)`; `seed` fixes all randomness.
    ///
    /// # Panics
    ///
    /// Panics on degenerate parameters (`n < 2`, `view_size` not in
    /// `1..n`, `gamma == 0`).
    pub fn new<F: FnMut(usize) -> f64>(config: SessionConfig, mut values: F, seed: u64) -> Self {
        assert!(config.gamma > 0, "gamma must be positive");
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let overlay = Overlay::random_init(config.n, config.view_size, &mut rng);
        let mut net = Network::new(config.n);
        let local_values: Vec<f64> = (0..config.n).map(&mut values).collect();
        let mut fields = Vec::new();
        for spec in config.aggregate.instances(config.count_concurrency) {
            match spec {
                InstanceSpec::Scalar { rule, init } => {
                    let field = net.add_scalar_field(rule, |_| 0.0);
                    fields.push(SessionField::Scalar { field, init });
                }
                InstanceSpec::CountMap { .. } => {
                    let field = net.add_map_field(&[]);
                    fields.push(SessionField::Map { field });
                }
            }
        }
        Session {
            size_estimate: config.n as f64, // bootstrap guess
            config,
            overlay,
            net,
            fields,
            local_values,
            epoch: 0,
            clock: 0,
            rng,
        }
    }

    /// Epoch index of the next [`Session::run_epoch`] call.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Current live node count.
    pub fn alive_count(&self) -> usize {
        self.net.alive_count()
    }

    /// Rolling network-size estimate used for leader election.
    pub fn size_estimate(&self) -> f64 {
        self.size_estimate
    }

    /// Updates one node's local value; takes effect at the next epoch
    /// restart, like [`epidemic_aggregation::GossipNode::set_local_value`].
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn set_local_value(&mut self, node: usize, value: f64) {
        self.local_values[node] = value;
    }

    /// Applies `update` to every live node's local value (e.g. a drifting
    /// sensor field).
    pub fn update_local_values<F: FnMut(usize, f64) -> f64>(&mut self, mut update: F) {
        for i in 0..self.local_values.len() {
            if self.net.is_alive(i) {
                self.local_values[i] = update(i, self.local_values[i]);
            }
        }
    }

    /// Runs one full epoch (γ cycles) under the given failure models and
    /// returns its outcome. Joiners produced by churn participate from
    /// the *next* epoch, per Section 4.2.
    pub fn run_epoch(&mut self, failure: FailureModel, comm: CommFailure) -> SessionEpoch {
        // Epoch restart: everyone alive participates; estimates re-init
        // from current local values; COUNT leaders self-elect.
        self.net.admit_all();
        let p_lead = (self.config.count_concurrency / self.size_estimate).clamp(0.0, 1.0);
        let mut leaders: Vec<usize> = Vec::new();
        let needs_leaders = self
            .fields
            .iter()
            .any(|f| matches!(f, SessionField::Map { .. }));
        if needs_leaders {
            for i in 0..self.net.slot_count() {
                if self.net.is_alive(i) && self.rng.next_bool(p_lead) {
                    leaders.push(i);
                }
            }
            // A leaderless COUNT epoch would report nothing; force one
            // leader, as a deployment's fallback timer would.
            if leaders.is_empty() {
                let alive: Vec<usize> = (0..self.net.slot_count())
                    .filter(|&i| self.net.is_alive(i))
                    .collect();
                leaders.push(alive[self.rng.index(alive.len())]);
            }
        }
        for f in &self.fields {
            match f {
                SessionField::Scalar { field, init } => {
                    let values = &self.local_values;
                    self.net
                        .reset_scalar_field(*field, |i| init.initial(values[i]));
                }
                SessionField::Map { field } => {
                    self.net.reset_map_field(*field, &leaders);
                }
            }
        }

        let opts = CycleOptions {
            link_failure: comm.link_failure,
            message_loss: comm.message_loss,
        };
        for cycle in 0..self.config.gamma {
            // Failures strike before the cycle.
            let crashes = failure.crashes_at(cycle, self.net.alive_count());
            if crashes > 0 {
                let alive: Vec<u32> = (0..self.net.slot_count() as u32)
                    .filter(|&i| self.net.is_alive(i as usize))
                    .collect();
                for pick in self
                    .rng
                    .sample_distinct(alive.len(), crashes.min(alive.len()))
                {
                    let victim = alive[pick] as usize;
                    self.net.crash(victim);
                    self.overlay.crash(victim);
                }
            }
            for _ in 0..failure.joins_at(cycle) {
                // Without a live introducer the join is impossible this
                // cycle; skip rather than spin.
                let Some(introducer) =
                    crate::experiment::random_live_introducer(&self.overlay, &mut self.rng)
                else {
                    break;
                };
                let idx = self.net.add_node();
                self.local_values.push(self.config.joiner_value);
                let joined = self.overlay.join_via(introducer, self.clock);
                debug_assert_eq!(joined, idx);
            }
            self.clock += 1;
            self.overlay.run_cycle(self.clock, &mut self.rng);
            self.net.run_cycle(&self.overlay, opts, &mut self.rng);
        }

        // Harvest estimates and roll the size estimate forward.
        let estimates: Vec<f64> = (0..self.net.slot_count())
            .filter(|&i| self.net.is_alive(i) && self.net.is_participating(i))
            .filter_map(|i| self.node_estimate(i))
            .collect();
        let outcome = SessionEpoch {
            epoch: self.epoch,
            leaders: leaders.len(),
            alive: self.net.alive_count(),
            estimates,
        };
        if needs_leaders {
            if let Some(count) = self.count_estimate_mean() {
                self.size_estimate = count.max(2.0);
            }
        }
        self.epoch += 1;
        outcome
    }

    /// The aggregate estimate as seen by one node right now.
    ///
    /// Returns `None` when the node lacks a usable estimate (e.g. no COUNT
    /// mass reached it).
    pub fn node_estimate(&self, node: usize) -> Option<f64> {
        let scalar = |idx: usize| -> Option<f64> {
            match self.fields.get(idx)? {
                SessionField::Scalar { field, .. } => Some(self.net.scalar_value(*field, node)),
                SessionField::Map { .. } => None,
            }
        };
        let count = |idx: usize| -> Option<f64> {
            match self.fields.get(idx)? {
                SessionField::Map { field } => {
                    estimator::count_estimate(self.net.map_value(*field, node))
                }
                SessionField::Scalar { .. } => None,
            }
        };
        match self.config.aggregate {
            AggregateKind::Average
            | AggregateKind::Minimum
            | AggregateKind::Maximum
            | AggregateKind::GeometricMean => scalar(0),
            AggregateKind::Count => count(0),
            AggregateKind::Sum => Some(estimator::sum_estimate(scalar(0)?, count(1)?)),
            AggregateKind::Variance => Some(estimator::variance_estimate(scalar(0)?, scalar(1)?)),
            AggregateKind::Product => {
                let geo = scalar(0)?;
                if geo < 0.0 {
                    return None;
                }
                Some(estimator::product_estimate(geo, count(1)?))
            }
        }
    }

    fn count_estimate_mean(&self) -> Option<f64> {
        let map_field = self.fields.iter().find_map(|f| match f {
            SessionField::Map { field } => Some(*field),
            SessionField::Scalar { .. } => None,
        })?;
        let estimates = self.net.count_estimates(map_field);
        if estimates.is_empty() {
            None
        } else {
            Some(stats::mean(&estimates))
        }
    }

    /// Ground-truth aggregate over the current live population.
    pub fn ground_truth(&self) -> Option<f64> {
        let values: Vec<f64> = (0..self.net.slot_count())
            .filter(|&i| self.net.is_alive(i))
            .map(|i| self.local_values[i])
            .collect();
        self.config.aggregate.compute_exact(&values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(aggregate: AggregateKind) -> SessionConfig {
        SessionConfig {
            n: 800,
            view_size: 20,
            gamma: 30,
            aggregate,
            count_concurrency: 12.0,
            joiner_value: 0.0,
        }
    }

    #[test]
    fn average_session_tracks_changing_values() {
        let mut session = Session::new(config(AggregateKind::Average), |i| i as f64, 1);
        let first = session.run_epoch(FailureModel::None, CommFailure::NONE);
        let truth = session.ground_truth().unwrap();
        assert!((first.mean_estimate().unwrap() - truth).abs() < 0.01);

        // Values shift; the next epoch reports the new mean.
        session.update_local_values(|_, v| v + 100.0);
        let second = session.run_epoch(FailureModel::None, CommFailure::NONE);
        let new_truth = session.ground_truth().unwrap();
        assert!((new_truth - truth - 100.0).abs() < 1e-9);
        assert!((second.mean_estimate().unwrap() - new_truth).abs() < 0.01);
    }

    #[test]
    fn count_session_self_calibrates() {
        let mut session = Session::new(config(AggregateKind::Count), |_| 0.0, 2);
        let mut last = 0.0;
        for _ in 0..3 {
            let outcome = session.run_epoch(FailureModel::None, CommFailure::NONE);
            last = outcome.mean_estimate().unwrap();
            assert!(outcome.leaders > 0);
        }
        assert!((last - 800.0).abs() < 80.0, "count {last}");
        // The rolling size estimate fed by epochs is close to the truth,
        // so leader counts hover near the configured concurrency.
        assert!((session.size_estimate() - 800.0).abs() < 120.0);
    }

    #[test]
    fn count_session_follows_population_through_churn() {
        let mut session = Session::new(config(AggregateKind::Count), |_| 0.0, 3);
        // Heavy growth via churn-with-joins-only is not expressible in
        // FailureModel; use symmetric churn and verify stability instead.
        for _ in 0..3 {
            let outcome =
                session.run_epoch(FailureModel::Churn { per_cycle: 8 }, CommFailure::NONE);
            assert_eq!(outcome.alive, 800);
            let est = outcome.mean_estimate().unwrap();
            assert!(est > 500.0 && est < 1_400.0, "estimate {est}");
        }
    }

    #[test]
    fn sum_session() {
        let mut session = Session::new(config(AggregateKind::Sum), |_| 2.5, 4);
        // First epoch calibrates the size estimate; judge the second.
        session.run_epoch(FailureModel::None, CommFailure::NONE);
        let outcome = session.run_epoch(FailureModel::None, CommFailure::NONE);
        let est = outcome.mean_estimate().unwrap();
        let truth = 800.0 * 2.5;
        assert!((est - truth).abs() / truth < 0.15, "sum {est} vs {truth}");
    }

    #[test]
    fn variance_session() {
        let mut session = Session::new(config(AggregateKind::Variance), |i| (i % 10) as f64, 5);
        let outcome = session.run_epoch(FailureModel::None, CommFailure::NONE);
        let truth = session.ground_truth().unwrap(); // variance of 0..9 = 8.25
        let est = outcome.mean_estimate().unwrap();
        assert!((est - truth).abs() < 0.05, "variance {est} vs {truth}");
    }

    #[test]
    fn minimum_session_is_exact() {
        let mut session = Session::new(config(AggregateKind::Minimum), |i| 10.0 + i as f64, 6);
        let outcome = session.run_epoch(FailureModel::None, CommFailure::NONE);
        for &est in &outcome.estimates {
            assert_eq!(est, 10.0);
        }
    }

    #[test]
    fn product_session_in_log_space() {
        let mut session = Session::new(config(AggregateKind::Product), |_| 1.01, 7);
        session.run_epoch(FailureModel::None, CommFailure::NONE); // calibrate
        let outcome = session.run_epoch(FailureModel::None, CommFailure::NONE);
        let est = outcome.mean_estimate().unwrap();
        let truth = session.ground_truth().unwrap(); // 1.01^800 ≈ 2864
        assert!(
            (est.ln() - truth.ln()).abs() < 0.2,
            "product {est} vs {truth}"
        );
    }

    #[test]
    fn joiners_wait_one_epoch() {
        let mut session = Session::new(config(AggregateKind::Average), |_| 5.0, 8);
        // Churn brings in joiners with value 0; the running epoch is
        // unaffected (reports 5.0), the next epoch includes them.
        let first = session.run_epoch(FailureModel::Churn { per_cycle: 10 }, CommFailure::NONE);
        let est = first.mean_estimate().unwrap();
        assert!((est - 5.0).abs() < 0.05, "running epoch disturbed: {est}");
        let second = session.run_epoch(FailureModel::None, CommFailure::NONE);
        let est2 = second.mean_estimate().unwrap();
        let truth = session.ground_truth().unwrap();
        assert!(truth < 5.0, "joiners should drag the truth down");
        assert!(
            (est2 - truth).abs() < 0.05,
            "next epoch missed joiners: {est2} vs {truth}"
        );
    }

    #[test]
    fn deterministic_sessions() {
        let run = |seed| {
            let mut s = Session::new(config(AggregateKind::Count), |_| 0.0, seed);
            (0..2)
                .map(|_| {
                    s.run_epoch(FailureModel::Churn { per_cycle: 5 }, CommFailure::NONE)
                        .mean_estimate()
                        .unwrap()
                })
                .collect::<Vec<f64>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn ground_truth_matches_kind() {
        let session = Session::new(config(AggregateKind::Maximum), |i| i as f64, 9);
        assert_eq!(session.ground_truth(), Some(799.0));
    }
}
