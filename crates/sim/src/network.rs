//! Cycle-driven simulation kernel.
//!
//! [`Network`] holds the aggregation state of every simulated node in
//! structure-of-arrays form (one [`FieldId`] per gossip instance) and
//! executes the paper's cycle model: in each cycle every live,
//! participating node — visited in a fresh random permutation — initiates
//! one push-pull exchange with a neighbor drawn from the overlay. The
//! communication failure knobs of Section 7.2 are injected here:
//!
//! * **link failure** (`P_d`): the whole exchange silently aborts, no state
//!   changes — convergence merely slows down;
//! * **message loss** (`P_l`), applied to request and reply independently:
//!   a lost request aborts the exchange, but a lost *reply* leaves the
//!   responder updated while the initiator keeps its old state — violating
//!   mass conservation exactly as the paper describes.

use epidemic_aggregation::estimator;
use epidemic_aggregation::rule::{Rule, UpdateRule};
use epidemic_aggregation::value::InstanceMap;
use epidemic_common::rng::Xoshiro256;
use epidemic_common::stats::{OnlineStats, Summary};
use epidemic_topology::NeighborSampling;
use std::fmt;

/// Handle to a state field registered with [`Network::add_scalar_field`] or
/// [`Network::add_map_field`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FieldId(usize);

enum Field {
    Scalar { rule: Rule, values: Vec<f64> },
    Map { maps: Vec<InstanceMap> },
}

/// Communication failure counters for one cycle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CycleReport {
    /// Exchanges attempted (one per live participating initiator with a
    /// neighbor available).
    pub attempted: usize,
    /// Exchanges in which both sides merged.
    pub completed: usize,
    /// Exchanges where only the responder merged (reply lost).
    pub half_completed: usize,
    /// Skipped: selected peer had crashed (initiator timeout).
    pub skipped_dead: usize,
    /// Skipped: selected peer is not participating in the epoch (refused).
    pub skipped_refused: usize,
    /// Skipped: link failure.
    pub skipped_link: usize,
    /// Skipped: the request message was lost.
    pub lost_requests: usize,
}

/// Per-cycle communication failure probabilities.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CycleOptions {
    /// Probability that the link for an exchange is down (`P_d`,
    /// Section 6.2). The exchange is skipped symmetrically.
    pub link_failure: f64,
    /// Probability that any single message (request or reply,
    /// independently) is lost (Section 7.2).
    pub message_loss: f64,
}

/// State of every simulated node, in structure-of-arrays layout.
pub struct Network {
    fields: Vec<Field>,
    alive: Vec<bool>,
    participating: Vec<bool>,
    alive_count: usize,
    permutation: Vec<u32>,
    /// Exchange participation tally for the cost analysis (reset per cycle
    /// when tallying is enabled).
    tally: Option<Vec<u32>>,
    /// Reusable merge buffer: map-field exchanges write the merge result
    /// here and copy it into both peers, so the hot loop allocates nothing
    /// once capacities have grown.
    scratch: InstanceMap,
}

impl Network {
    /// Creates a network of `n` live, participating nodes with no fields.
    pub fn new(n: usize) -> Self {
        Network {
            fields: Vec::new(),
            alive: vec![true; n],
            participating: vec![true; n],
            alive_count: n,
            permutation: Vec::new(),
            tally: None,
            scratch: InstanceMap::new(),
        }
    }

    /// Re-initializes a scalar field in place (epoch restart: estimates are
    /// rebuilt from fresh local values, Section 4.1).
    ///
    /// # Panics
    ///
    /// Panics if the field is a map field.
    pub fn reset_scalar_field<F: FnMut(usize) -> f64>(&mut self, field: FieldId, mut init: F) {
        match &mut self.fields[field.0] {
            Field::Scalar { values, .. } => {
                for (i, v) in values.iter_mut().enumerate() {
                    *v = init(i);
                }
            }
            Field::Map { .. } => panic!("field {field:?} is a map field"),
        }
    }

    /// Re-initializes a map field with a fresh leader set (epoch restart
    /// for COUNT).
    ///
    /// # Panics
    ///
    /// Panics if the field is a scalar field or a leader is out of range.
    pub fn reset_map_field(&mut self, field: FieldId, leaders: &[usize]) {
        match &mut self.fields[field.0] {
            Field::Map { maps } => {
                for m in maps.iter_mut() {
                    *m = InstanceMap::new();
                }
                for &l in leaders {
                    maps[l] = InstanceMap::leader(l as u64);
                }
            }
            Field::Scalar { .. } => panic!("field {field:?} is a scalar field"),
        }
    }

    /// Number of node slots (live + crashed).
    pub fn slot_count(&self) -> usize {
        self.alive.len()
    }

    /// Number of live nodes.
    pub fn alive_count(&self) -> usize {
        self.alive_count
    }

    /// Returns `true` if `node` is live.
    pub fn is_alive(&self, node: usize) -> bool {
        self.alive[node]
    }

    /// Returns `true` if `node` participates in the current epoch.
    pub fn is_participating(&self, node: usize) -> bool {
        self.participating[node]
    }

    /// Registers a scalar gossip field; `init` supplies each node's initial
    /// estimate.
    pub fn add_scalar_field<F: FnMut(usize) -> f64>(&mut self, rule: Rule, mut init: F) -> FieldId {
        let values = (0..self.slot_count()).map(&mut init).collect();
        self.fields.push(Field::Scalar { rule, values });
        FieldId(self.fields.len() - 1)
    }

    /// Registers a COUNT map field with the given leader nodes.
    ///
    /// # Panics
    ///
    /// Panics if a leader index is out of range.
    pub fn add_map_field(&mut self, leaders: &[usize]) -> FieldId {
        let mut maps = vec![InstanceMap::new(); self.slot_count()];
        for &l in leaders {
            maps[l] = InstanceMap::leader(l as u64);
        }
        self.fields.push(Field::Map { maps });
        FieldId(self.fields.len() - 1)
    }

    /// Crashes a node (idempotent). Its state mass disappears from the
    /// computation, exactly like a real crash.
    pub fn crash(&mut self, node: usize) {
        if self.alive[node] {
            self.alive[node] = false;
            self.alive_count -= 1;
        }
    }

    /// Adds a new node. It is live immediately but does **not** participate
    /// in the running epoch (Section 4.2): exchanges directed at it are
    /// refused. Returns the new node index.
    pub fn add_node(&mut self) -> usize {
        let idx = self.alive.len();
        self.alive.push(true);
        self.participating.push(false);
        self.alive_count += 1;
        for field in &mut self.fields {
            match field {
                Field::Scalar { values, .. } => values.push(0.0),
                Field::Map { maps } => maps.push(InstanceMap::new()),
            }
        }
        idx
    }

    /// Enables per-node exchange tallying (for the `1 + Poisson(1)` cost
    /// analysis). Counts both initiated and passively served exchanges.
    pub fn enable_tally(&mut self) {
        self.tally = Some(vec![0; self.slot_count()]);
    }

    /// Takes the tallies accumulated since [`Network::enable_tally`] /
    /// the previous call, restricted to live participating nodes.
    pub fn take_tally(&mut self) -> Vec<u32> {
        match &mut self.tally {
            Some(t) => {
                let out = (0..t.len())
                    .filter(|&i| self.alive[i] && self.participating[i])
                    .map(|i| t[i])
                    .collect();
                t.iter_mut().for_each(|c| *c = 0);
                out
            }
            None => Vec::new(),
        }
    }

    /// Runs one cycle over the overlay `sampler`: every live participating
    /// node, in random order, initiates one push-pull exchange.
    pub fn run_cycle<S: NeighborSampling + ?Sized>(
        &mut self,
        sampler: &S,
        opts: CycleOptions,
        rng: &mut Xoshiro256,
    ) -> CycleReport {
        debug_assert!(sampler.node_count() >= self.slot_count());
        let mut report = CycleReport::default();
        self.permutation.clear();
        self.permutation.extend(
            (0..self.slot_count() as u32)
                .filter(|&i| self.alive[i as usize] && self.participating[i as usize]),
        );
        rng.shuffle(&mut self.permutation);
        for idx in 0..self.permutation.len() {
            let initiator = self.permutation[idx] as usize;
            if !self.alive[initiator] {
                continue; // crashed earlier in this cycle by a failure model
            }
            let Some(peer) = sampler.sample_neighbor(initiator, rng) else {
                continue;
            };
            if peer == initiator {
                continue;
            }
            report.attempted += 1;
            if opts.link_failure > 0.0 && rng.next_bool(opts.link_failure) {
                report.skipped_link += 1;
                continue;
            }
            if opts.message_loss > 0.0 && rng.next_bool(opts.message_loss) {
                report.lost_requests += 1;
                continue;
            }
            if !self.alive[peer] {
                report.skipped_dead += 1;
                continue;
            }
            if !self.participating[peer] {
                report.skipped_refused += 1;
                continue;
            }
            // The responder merges upon receipt; the initiator merges only
            // if the reply survives.
            let reply_lost = opts.message_loss > 0.0 && rng.next_bool(opts.message_loss);
            self.apply_exchange(initiator, peer, reply_lost);
            if let Some(t) = &mut self.tally {
                t[peer] += 1;
                if !reply_lost {
                    t[initiator] += 1;
                }
            }
            if reply_lost {
                report.half_completed += 1;
            } else {
                report.completed += 1;
            }
        }
        report
    }

    fn apply_exchange(&mut self, i: usize, j: usize, reply_lost: bool) {
        let scratch = &mut self.scratch;
        for field in &mut self.fields {
            match field {
                Field::Scalar { rule, values } => {
                    let merged = rule.merge(values[i], values[j]);
                    values[j] = merged;
                    if !reply_lost {
                        values[i] = merged;
                    }
                }
                Field::Map { maps } => {
                    // Merge into the reused scratch buffer, then install by
                    // copy into each peer's existing buffer — no fresh
                    // allocations per exchange (the old code allocated one
                    // vector for the merge and cloned a second).
                    InstanceMap::merge_into(&maps[i], &maps[j], scratch);
                    maps[j].copy_from(scratch);
                    if !reply_lost {
                        maps[i].copy_from(scratch);
                    }
                }
            }
        }
    }

    fn scalar_field(&self, field: FieldId) -> (&Rule, &[f64]) {
        match &self.fields[field.0] {
            Field::Scalar { rule, values } => (rule, values),
            Field::Map { .. } => panic!("field {field:?} is a map field"),
        }
    }

    fn map_field(&self, field: FieldId) -> &[InstanceMap] {
        match &self.fields[field.0] {
            Field::Map { maps } => maps,
            Field::Scalar { .. } => panic!("field {field:?} is a scalar field"),
        }
    }

    /// Raw scalar value of one node (alive or not).
    ///
    /// # Panics
    ///
    /// Panics if the field is a map field or the index is out of range.
    pub fn scalar_value(&self, field: FieldId, node: usize) -> f64 {
        self.scalar_field(field).1[node]
    }

    /// Scalar values of all live participating nodes.
    pub fn scalar_values(&self, field: FieldId) -> Vec<f64> {
        let (_, values) = self.scalar_field(field);
        (0..values.len())
            .filter(|&i| self.alive[i] && self.participating[i])
            .map(|i| values[i])
            .collect()
    }

    /// Mean/variance/extrema of a scalar field over live participating
    /// nodes (the paper's Eq. (1) statistics).
    pub fn scalar_summary(&self, field: FieldId) -> Summary {
        let (_, values) = self.scalar_field(field);
        let stats: OnlineStats = (0..values.len())
            .filter(|&i| self.alive[i] && self.participating[i])
            .map(|i| values[i])
            .collect();
        stats.summary()
    }

    /// The instance map of one node.
    ///
    /// # Panics
    ///
    /// Panics if the field is a scalar field or the index is out of range.
    pub fn map_value(&self, field: FieldId, node: usize) -> &InstanceMap {
        &self.map_field(field)[node]
    }

    /// Per-node robust COUNT estimates (trimmed mean over leaders, paper
    /// Section 7.3) across live participating nodes. Nodes that no
    /// instance mass reached are skipped.
    pub fn count_estimates(&self, field: FieldId) -> Vec<f64> {
        let maps = self.map_field(field);
        (0..maps.len())
            .filter(|&i| self.alive[i] && self.participating[i])
            .filter_map(|i| estimator::count_estimate(&maps[i]))
            .collect()
    }

    /// Per-leader mass of a map field summed over live participating nodes
    /// (diagnostic: equals 1 per leader while no mass has been lost).
    pub fn map_mass(&self, field: FieldId, leader: u64) -> f64 {
        let maps = self.map_field(field);
        (0..maps.len())
            .filter(|&i| self.alive[i] && self.participating[i])
            .map(|i| maps[i].get(leader).unwrap_or(0.0))
            .sum()
    }

    /// Marks every live node as participating (start of a fresh epoch).
    pub fn admit_all(&mut self) {
        for i in 0..self.participating.len() {
            self.participating[i] = true;
        }
    }
}

impl fmt::Debug for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Network")
            .field("slots", &self.slot_count())
            .field("alive", &self.alive_count)
            .field("fields", &self.fields.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epidemic_topology::CompleteSampler;

    fn rng(seed: u64) -> Xoshiro256 {
        Xoshiro256::seed_from_u64(seed)
    }

    #[test]
    fn scalar_field_initialization() {
        let mut net = Network::new(4);
        let f = net.add_scalar_field(Rule::Average, |i| i as f64);
        assert_eq!(net.scalar_value(f, 2), 2.0);
        let s = net.scalar_summary(f);
        assert_eq!(s.mean, 1.5);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 3.0);
    }

    #[test]
    fn cycle_conserves_mean_and_reduces_variance() {
        let mut net = Network::new(200);
        let f = net.add_scalar_field(Rule::Average, |i| if i == 0 { 200.0 } else { 0.0 });
        let sampler = CompleteSampler::new(200);
        let mut r = rng(1);
        let before = net.scalar_summary(f);
        for _ in 0..10 {
            net.run_cycle(&sampler, CycleOptions::default(), &mut r);
        }
        let after = net.scalar_summary(f);
        assert!((after.mean - before.mean).abs() < 1e-9, "mean drifted");
        // Ten cycles at rho ~ 0.303 shrink the variance by ~6.7e-6.
        assert!(after.variance < before.variance * 1e-4, "no convergence");
    }

    #[test]
    fn variance_reduction_rate_matches_rho() {
        // The headline claim: per-cycle variance reduction ~ 1/(2 sqrt e).
        let n = 20_000;
        let mut net = Network::new(n);
        let f = net.add_scalar_field(Rule::Average, |i| if i == 0 { n as f64 } else { 0.0 });
        let sampler = CompleteSampler::new(n);
        let mut r = rng(2);
        let v0 = net.scalar_summary(f).variance;
        let cycles = 15;
        for _ in 0..cycles {
            net.run_cycle(&sampler, CycleOptions::default(), &mut r);
        }
        let vk = net.scalar_summary(f).variance;
        let factor = (vk / v0).powf(1.0 / cycles as f64);
        let rho = epidemic_aggregation::theory::RHO_PUSH_PULL;
        assert!(
            (factor - rho).abs() < 0.05,
            "measured convergence factor {factor}, expected ~{rho}"
        );
    }

    #[test]
    fn link_failure_slows_but_preserves_mean() {
        let mut net = Network::new(500);
        let f = net.add_scalar_field(Rule::Average, |i| i as f64);
        let sampler = CompleteSampler::new(500);
        let mut r = rng(3);
        let mean0 = net.scalar_summary(f).mean;
        let mut report_sum = 0usize;
        for _ in 0..10 {
            let rep = net.run_cycle(
                &sampler,
                CycleOptions {
                    link_failure: 0.5,
                    message_loss: 0.0,
                },
                &mut r,
            );
            report_sum += rep.skipped_link;
            assert_eq!(rep.half_completed, 0);
        }
        assert!((net.scalar_summary(f).mean - mean0).abs() < 1e-9);
        // About half of all attempts must have been dropped.
        assert!((report_sum as f64 - 2500.0).abs() < 300.0);
    }

    #[test]
    fn lost_reply_breaks_mass_conservation() {
        // With heavy reply loss the global sum drifts — the exact pathology
        // of Section 7.2.
        let mut net = Network::new(300);
        let f = net.add_scalar_field(Rule::Average, |i| if i == 0 { 300.0 } else { 0.0 });
        let sampler = CompleteSampler::new(300);
        let mut r = rng(4);
        let mut saw_half = false;
        for _ in 0..15 {
            let rep = net.run_cycle(
                &sampler,
                CycleOptions {
                    link_failure: 0.0,
                    message_loss: 0.4,
                },
                &mut r,
            );
            saw_half |= rep.half_completed > 0;
        }
        assert!(saw_half);
        let mean = net.scalar_summary(f).mean;
        assert!(
            (mean - 1.0).abs() > 1e-6,
            "mass improbably conserved: {mean}"
        );
    }

    #[test]
    fn crashed_nodes_are_excluded() {
        let mut net = Network::new(10);
        let f = net.add_scalar_field(Rule::Average, |i| i as f64);
        net.crash(9);
        net.crash(9);
        assert_eq!(net.alive_count(), 9);
        let s = net.scalar_summary(f);
        assert_eq!(s.count, 9);
        assert_eq!(s.max, 8.0);
    }

    #[test]
    fn dead_peer_skips_exchange() {
        let mut net = Network::new(2);
        let f = net.add_scalar_field(Rule::Average, |i| i as f64);
        net.crash(1);
        let sampler = CompleteSampler::new(2);
        let mut r = rng(5);
        let rep = net.run_cycle(&sampler, CycleOptions::default(), &mut r);
        assert_eq!(rep.skipped_dead, 1);
        assert_eq!(rep.completed, 0);
        assert_eq!(net.scalar_value(f, 0), 0.0);
    }

    #[test]
    fn new_nodes_refuse_exchanges() {
        let mut net = Network::new(2);
        let f = net.add_scalar_field(Rule::Average, |i| (i + 1) as f64);
        let joiner = net.add_node();
        assert_eq!(joiner, 2);
        assert!(!net.is_participating(joiner));
        let sampler = CompleteSampler::new(3);
        let mut r = rng(6);
        let mut refused = 0;
        for _ in 0..30 {
            refused += net
                .run_cycle(&sampler, CycleOptions::default(), &mut r)
                .skipped_refused;
        }
        assert!(refused > 0, "joiner never refused an exchange");
        // Joiner state untouched; participants converged to their own mean.
        assert_eq!(net.scalar_value(f, joiner), 0.0);
        let s = net.scalar_summary(f);
        assert!((s.mean - 1.5).abs() < 1e-9);
        assert!(s.variance < 1e-12);
    }

    #[test]
    fn admit_all_brings_joiners_in() {
        let mut net = Network::new(2);
        net.add_scalar_field(Rule::Average, |_| 1.0);
        let joiner = net.add_node();
        net.admit_all();
        assert!(net.is_participating(joiner));
    }

    #[test]
    fn map_field_count_protocol_converges() {
        let n = 400;
        let mut net = Network::new(n);
        let f = net.add_map_field(&[3, 77, 200]);
        let sampler = CompleteSampler::new(n);
        let mut r = rng(7);
        for _ in 0..30 {
            net.run_cycle(&sampler, CycleOptions::default(), &mut r);
        }
        // Mass per leader conserved.
        for leader in [3u64, 77, 200] {
            assert!((net.map_mass(f, leader) - 1.0).abs() < 1e-9);
        }
        let estimates = net.count_estimates(f);
        assert_eq!(estimates.len(), n);
        for est in estimates {
            assert!((est - n as f64).abs() < n as f64 * 0.05, "estimate {est}");
        }
    }

    #[test]
    fn map_mass_drops_when_holder_crashes() {
        let mut net = Network::new(10);
        let f = net.add_map_field(&[0]);
        net.crash(0); // leader dies before any exchange: all mass gone
        assert_eq!(net.map_mass(f, 0), 0.0);
        assert!(net.count_estimates(f).is_empty());
    }

    #[test]
    fn exchange_tally_distribution() {
        // Section 4.5: exchanges per node per cycle = 1 + Poisson(1) on a
        // random overlay: mean 2, variance 1.
        let n = 20_000;
        let mut net = Network::new(n);
        net.add_scalar_field(Rule::Average, |_| 0.0);
        net.enable_tally();
        let sampler = CompleteSampler::new(n);
        let mut r = rng(8);
        net.run_cycle(&sampler, CycleOptions::default(), &mut r);
        let tally = net.take_tally();
        let stats: OnlineStats = tally.iter().map(|&c| c as f64).collect();
        assert!((stats.mean() - 2.0).abs() < 0.05, "mean {}", stats.mean());
        assert!(
            (stats.variance() - 1.0).abs() < 0.1,
            "variance {}",
            stats.variance()
        );
    }

    #[test]
    #[should_panic(expected = "is a map field")]
    fn scalar_accessor_rejects_map_field() {
        let mut net = Network::new(2);
        let f = net.add_map_field(&[0]);
        net.scalar_value(f, 0);
    }

    #[test]
    #[should_panic(expected = "is a scalar field")]
    fn map_accessor_rejects_scalar_field() {
        let mut net = Network::new(2);
        let f = net.add_scalar_field(Rule::Average, |_| 0.0);
        net.map_value(f, 0);
    }

    #[test]
    fn min_rule_broadcasts_extreme() {
        let n = 256;
        let mut net = Network::new(n);
        let f = net.add_scalar_field(Rule::Min, |i| 100.0 + i as f64);
        let sampler = CompleteSampler::new(n);
        let mut r = rng(9);
        for _ in 0..12 {
            net.run_cycle(&sampler, CycleOptions::default(), &mut r);
        }
        let s = net.scalar_summary(f);
        assert_eq!(s.max, 100.0, "min not fully broadcast");
    }
}
