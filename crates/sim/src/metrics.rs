//! Convergence metrics.
//!
//! Helper functions shared by the experiment harness and the figure
//! reproduction binaries: convergence factors from variance series, the
//! exchange-count distribution check of the cost analysis (Section 4.5),
//! and a membership [`ViewHealth`] snapshot for engines that gossip
//! NEWSCAST views.

use epidemic_common::stats::OnlineStats;
use epidemic_newscast::View;

/// Average per-cycle convergence factor over `k` cycles:
/// `(σ²_k / σ²_0)^(1/k)`.
///
/// # Panics
///
/// Panics if `k == 0` or the variances are not positive.
pub fn convergence_factor(variance_0: f64, variance_k: f64, k: u32) -> f64 {
    assert!(k > 0, "k must be positive");
    assert!(
        variance_0 > 0.0 && variance_k >= 0.0,
        "variances must be non-negative (σ₀² > 0)"
    );
    (variance_k / variance_0).powf(1.0 / f64::from(k))
}

/// Per-cycle convergence factors `ρ_i = σ²_i / σ²_{i−1}` from a variance
/// series (index 0 is the initial variance). Entries where the previous
/// variance is zero yield `NaN`.
pub fn per_cycle_factors(variances: &[f64]) -> Vec<f64> {
    variances
        .windows(2)
        .map(|w| if w[0] > 0.0 { w[1] / w[0] } else { f64::NAN })
        .collect()
}

/// Verifies the cost-analysis shape of a per-node exchange tally: per
/// cycle, a node participates in `1 + φ` exchanges where `φ ~ Poisson(1)`.
/// Returns `(mean, variance)` of the tally.
pub fn exchange_moments(tally: &[u32]) -> (f64, f64) {
    let stats: OnlineStats = tally.iter().map(|&c| f64::from(c)).collect();
    (stats.mean(), stats.variance())
}

// The [`ViewHealth`] snapshot shape now lives in the telemetry plane so
// the sim and the wire runtimes report membership health in one
// vocabulary; re-exported here for existing `crate::metrics` callers.
pub use epidemic_telemetry::ViewHealth;

/// Summarizes the views of the live population; `is_alive` classifies
/// descriptor targets. Engine-agnostic: the event engine feeds it per-node
/// membership state, tests can feed it any view collection.
pub fn view_health<'a, I, F>(views: I, is_alive: F) -> ViewHealth
where
    I: IntoIterator<Item = &'a View>,
    F: Fn(u32) -> bool,
{
    let mut view_count = 0usize;
    let mut entries = 0usize;
    let mut dead = 0usize;
    for view in views {
        view_count += 1;
        for d in view.entries() {
            entries += 1;
            if !is_alive(d.node) {
                dead += 1;
            }
        }
    }
    ViewHealth {
        views: view_count,
        mean_size: if view_count == 0 {
            0.0
        } else {
            entries as f64 / view_count as f64
        },
        dead_entry_fraction: if entries == 0 {
            0.0
        } else {
            dead as f64 / entries as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor_of_exact_geometric_series() {
        // σ² halves per cycle -> factor 0.5 regardless of horizon.
        assert!((convergence_factor(1.0, 0.5f64.powi(10), 10) - 0.5).abs() < 1e-12);
        assert!((convergence_factor(8.0, 8.0 * 0.25f64.powi(4), 4) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn factor_of_stalled_series_is_one() {
        assert!((convergence_factor(3.0, 3.0, 20) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn factor_rejects_zero_k() {
        convergence_factor(1.0, 0.5, 0);
    }

    #[test]
    fn per_cycle_factors_basic() {
        let f = per_cycle_factors(&[4.0, 2.0, 1.0, 0.5]);
        assert_eq!(f, vec![0.5, 0.5, 0.5]);
        let f = per_cycle_factors(&[0.0, 1.0]);
        assert!(f[0].is_nan());
    }

    #[test]
    fn exchange_moments_of_constant_tally() {
        let (m, v) = exchange_moments(&[2, 2, 2, 2]);
        assert_eq!(m, 2.0);
        assert_eq!(v, 0.0);
    }

    #[test]
    fn view_health_counts_dead_entries() {
        use epidemic_newscast::Descriptor;
        let mut a = View::new(4);
        a.insert(Descriptor::new(1, 10));
        a.insert(Descriptor::new(2, 9));
        let mut b = View::new(4);
        b.insert(Descriptor::new(2, 7));
        let health = view_health([&a, &b], |peer| peer != 2);
        assert_eq!(health.views, 2);
        assert!((health.mean_size - 1.5).abs() < 1e-12);
        assert!((health.dead_entry_fraction - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn view_health_of_nothing() {
        let health = view_health(std::iter::empty::<&View>(), |_| true);
        assert_eq!(health.views, 0);
        assert_eq!(health.mean_size, 0.0);
        assert_eq!(health.dead_entry_fraction, 0.0);
    }
}
