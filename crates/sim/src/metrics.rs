//! Convergence metrics.
//!
//! Helper functions shared by the experiment harness and the figure
//! reproduction binaries: convergence factors from variance series and the
//! exchange-count distribution check of the cost analysis (Section 4.5).

use epidemic_common::stats::OnlineStats;

/// Average per-cycle convergence factor over `k` cycles:
/// `(σ²_k / σ²_0)^(1/k)`.
///
/// # Panics
///
/// Panics if `k == 0` or the variances are not positive.
pub fn convergence_factor(variance_0: f64, variance_k: f64, k: u32) -> f64 {
    assert!(k > 0, "k must be positive");
    assert!(
        variance_0 > 0.0 && variance_k >= 0.0,
        "variances must be non-negative (σ₀² > 0)"
    );
    (variance_k / variance_0).powf(1.0 / f64::from(k))
}

/// Per-cycle convergence factors `ρ_i = σ²_i / σ²_{i−1}` from a variance
/// series (index 0 is the initial variance). Entries where the previous
/// variance is zero yield `NaN`.
pub fn per_cycle_factors(variances: &[f64]) -> Vec<f64> {
    variances
        .windows(2)
        .map(|w| if w[0] > 0.0 { w[1] / w[0] } else { f64::NAN })
        .collect()
}

/// Verifies the cost-analysis shape of a per-node exchange tally: per
/// cycle, a node participates in `1 + φ` exchanges where `φ ~ Poisson(1)`.
/// Returns `(mean, variance)` of the tally.
pub fn exchange_moments(tally: &[u32]) -> (f64, f64) {
    let stats: OnlineStats = tally.iter().map(|&c| f64::from(c)).collect();
    (stats.mean(), stats.variance())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor_of_exact_geometric_series() {
        // σ² halves per cycle -> factor 0.5 regardless of horizon.
        assert!((convergence_factor(1.0, 0.5f64.powi(10), 10) - 0.5).abs() < 1e-12);
        assert!((convergence_factor(8.0, 8.0 * 0.25f64.powi(4), 4) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn factor_of_stalled_series_is_one() {
        assert!((convergence_factor(3.0, 3.0, 20) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn factor_rejects_zero_k() {
        convergence_factor(1.0, 0.5, 0);
    }

    #[test]
    fn per_cycle_factors_basic() {
        let f = per_cycle_factors(&[4.0, 2.0, 1.0, 0.5]);
        assert_eq!(f, vec![0.5, 0.5, 0.5]);
        let f = per_cycle_factors(&[0.0, 1.0]);
        assert!(f[0].is_nan());
    }

    #[test]
    fn exchange_moments_of_constant_tally() {
        let (m, v) = exchange_moments(&[2, 2, 2, 2]);
        assert_eq!(m, 2.0);
        assert_eq!(v, 0.0);
    }
}
