//! Event-driven engine.
//!
//! The cycle model of [`crate::network`] abstracts away everything the
//! *practical* protocol of Section 4 exists to handle: message delay,
//! clock drift, exchange timeouts, and epoch synchronization. This engine
//! simulates those effects faithfully by driving the sans-io
//! [`GossipNode`] state machine with a timestamped event queue:
//!
//! * every node runs on its own skewed clock (`local = global × drift_i`);
//! * messages arrive after a uniformly random delay, or never (loss);
//! * nodes are woken exactly at their next self-reported deadline.
//!
//! Conditions come from the same engine-independent
//! [`Scenario`](crate::scenario::Scenario) the cycle engine consumes:
//! pluggable overlays (complete, static [`Graph`], NEWSCAST), a
//! [`ValueInit`](crate::scenario::ValueInit)-driven local value per node,
//! crash/churn schedules applied at cycle-boundary ticks by killing nodes
//! (dropping their in-flight deliveries) and bootstrapping joiners
//! through live introducers, and message/link loss probabilities.
//!
//! `OverlaySpec::Newscast` is simulated *event by event* (Section 4.4):
//! every node runs a [`MembershipNode`] next to its aggregation state
//! machine, view exchanges travel through the same delay/loss model as
//! aggregation messages, `GETNEIGHBOR()` draws from the node's own
//! partial view (so stale entries really do cost timeouts), and churn
//! joiners bootstrap their view from an introducer's snapshot. The
//! pre-PR-3 idealization — uniform sampling over the global live set —
//! is kept as [`MembershipModel::Idealized`] for ablations.
//!
//! The event queue is a single binary heap of ordered [`Event`] structs
//! carrying their payloads inline — one push and one pop per event, no
//! side-table bookkeeping on the hottest loop in the repo.
//!
//! The headline measurement is the *epoch entry spread* `T_j` (Section
//! 4.3): the global-time window within which all live nodes enter epoch
//! `j`. With epidemic epoch synchronization the spread stays bounded by a
//! few message delays; without it, clock drift widens it without bound —
//! the ablation `repro ablation-sync` demonstrates exactly this.

use crate::scenario::{OverlaySpec, Scenario};
use epidemic_aggregation::message::MessageBody;
use epidemic_aggregation::node::GossipNode;
use epidemic_aggregation::{EpochReport, InstanceSpec, Message, NodeConfig, PeerSampler};
use epidemic_common::rng::Xoshiro256;
use epidemic_common::sample::NeighborSampling;
use epidemic_common::stats::OnlineStats;
use epidemic_common::NodeId;
use epidemic_newscast::node::{MembershipConfig, MembershipNode, ViewPayload};
use epidemic_newscast::Descriptor;
use epidemic_query::{
    QueryEstimate, QueryOutbound, QueryPlane, QueryPlaneConfig, RpcRequest, RpcResponse, RpcStatus,
};
use epidemic_telemetry::{write_snapshot, Counter, Gauge, Registry, TraceEvent};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};
use std::path::PathBuf;

use epidemic_topology::Graph;

/// How the event engine realizes `OverlaySpec::Newscast`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MembershipModel {
    /// Simulate NEWSCAST membership event by event: per-node partial
    /// views, view exchanges through the same delay/loss model as
    /// aggregation traffic, peers drawn from the local view. Exchanges
    /// ship *delta* views — only the descriptors the partner has not
    /// seen — with a periodic full-view anti-entropy fallback.
    #[default]
    Gossip,
    /// Like [`MembershipModel::Gossip`] but every exchange ships the
    /// full view, as the protocol did before delta gossip. Kept for
    /// bandwidth ablations against the delta model.
    FullViews,
    /// Idealize membership as uniform sampling over the global live set —
    /// the "sufficiently random" overlay NEWSCAST maintains, with the
    /// maintenance cost and staleness effects abstracted away. Kept for
    /// ablations against the gossiped model.
    Idealized,
}

/// Configuration of an event-driven simulation: the shared [`Scenario`]
/// plus the timing model only this engine has.
#[derive(Debug, Clone)]
pub struct EventConfig {
    /// Conditions shared with the cycle-driven engine.
    pub scenario: Scenario,
    /// Protocol configuration shared by all nodes.
    pub node: NodeConfig,
    /// Uniform message delay range `[min, max)` in ticks.
    pub delay: (u64, u64),
    /// Maximum relative clock drift: node clocks run at a rate drawn
    /// uniformly from `[1 − drift, 1 + drift]`.
    pub drift: f64,
    /// Global simulation duration in ticks.
    pub duration: u64,
    /// How `OverlaySpec::Newscast` is simulated (gossiped by default).
    pub membership: MembershipModel,
    /// Per-node protocol event ring capacity; 0 disables tracing. When
    /// enabled, the drained events come back in
    /// [`EventOutcome::traces`].
    pub trace_capacity: usize,
    /// Periodic Prometheus-text snapshots of the sim's metrics registry
    /// (the cycle-driven twin of the wire runtimes' `/metrics`
    /// endpoint); `None` still populates [`EventOutcome::registry`].
    pub snapshot: Option<SnapshotSpec>,
    /// Query-plane tuning shared by every node (catalog gossip cadence,
    /// rumor boost, COUNT concurrency).
    pub query: QueryPlaneConfig,
    /// Scripted client RPCs against the query plane, the sim twin of a
    /// client datagram arriving at one node's RPC endpoint. An empty
    /// script (the default) leaves the run event-for-event identical to
    /// a build without the query plane: query traffic draws from its own
    /// RNG stream and schedules no events until a query exists.
    pub query_script: Vec<QueryAction>,
}

/// One scripted query-plane RPC: `request` hits `node`'s endpoint at
/// global tick `at`, exactly as if a client datagram had arrived there.
/// Responses come back in script order in [`EventOutcome::query_responses`].
#[derive(Debug, Clone)]
pub struct QueryAction {
    /// Global tick the request arrives.
    pub at: u64,
    /// Node whose RPC endpoint serves the request (any node is valid —
    /// that is the point of the paper).
    pub node: u32,
    /// The client request.
    pub request: RpcRequest,
}

/// Where and how often [`EventConfig::snapshot`] writes the registry.
#[derive(Debug, Clone)]
pub struct SnapshotSpec {
    /// Destination file, atomically replaced on every write.
    pub path: PathBuf,
    /// Global-tick interval between writes (a final snapshot is always
    /// written when the run ends).
    pub every_ticks: u64,
}

impl Default for EventConfig {
    fn default() -> Self {
        EventConfig {
            scenario: Scenario::default(),
            node: NodeConfig::builder()
                .gamma(15)
                .cycle_length(1_000)
                .timeout(200)
                .instance(InstanceSpec::AVERAGE)
                .build()
                .expect("default node config is valid"),
            delay: (10, 50),
            drift: 0.0,
            duration: 40_000,
            membership: MembershipModel::Gossip,
            trace_capacity: 0,
            snapshot: None,
            query: QueryPlaneConfig::default(),
            query_script: Vec::new(),
        }
    }
}

impl EventConfig {
    /// Runs the simulation deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics on an inconsistent scenario (see
    /// [`Scenario::validate`](crate::scenario::Scenario::validate)) or an
    /// empty delay range.
    pub fn run(&self, seed: u64) -> EventOutcome {
        EventSim::new(self, seed).run()
    }
}

/// Runs `seeds.len()` independent repetitions across OS threads, returning
/// outcomes in seed order — the event-engine twin of
/// [`crate::experiment::run_many`].
pub fn run_many(config: &EventConfig, seeds: &[u64]) -> Vec<EventOutcome> {
    crate::pool::parallel_map_seeds(seeds, |seed| config.run(seed))
}

/// Result of an event-driven simulation.
#[derive(Debug)]
pub struct EventOutcome {
    /// Per-node epoch reports, indexed by node.
    pub reports: Vec<Vec<EpochReport>>,
    /// For each observed epoch: `(epoch, first_entry, last_entry)` in
    /// global ticks over nodes that entered it.
    pub epoch_entries: Vec<(u64, u64, u64)>,
    /// Aggregation messages transmitted.
    pub messages_sent: usize,
    /// Aggregation messages dropped by the loss model.
    pub messages_lost: usize,
    /// Membership view-exchange messages transmitted (gossiped NEWSCAST
    /// only; the cost the idealized model hides).
    pub view_messages_sent: usize,
    /// Wire bytes of the transmitted view exchanges, priced by the real
    /// codec ([`epidemic_net::codec::view_message_len`]): a full view
    /// carries the sender's `c` descriptors plus a fresh self-descriptor
    /// (`view_message_len(c + 1)` per direction); a delta
    /// ([`MembershipModel::Gossip`]) carries only the descriptors the
    /// partner has not seen, and is priced accordingly.
    pub view_bytes_sent: usize,
    /// Membership view-exchange messages dropped by the loss model.
    pub view_messages_lost: usize,
    /// Health of the live population's partial views when the simulation
    /// ended (`None` unless membership was gossiped).
    pub view_health: Option<crate::metrics::ViewHealth>,
    /// Nodes alive when the simulation ended.
    pub final_alive: usize,
    /// Per-node protocol event traces (aggregation plane, then
    /// membership plane); all empty unless
    /// [`EventConfig::trace_capacity`] was set.
    pub traces: Vec<Vec<TraceEvent>>,
    /// The run's metrics registry: traffic counters plus the derived
    /// convergence gauges (`epoch.variance_reduction_rho` vs the
    /// `epoch.rho_theory` bound 1/(2√e), `epoch.estimate_drift`) — the
    /// same namespace the wire runtimes expose over `/metrics`.
    pub registry: Registry,
    /// Responses to the scripted query RPCs, in script order. A request
    /// aimed at a crashed node is answered `NotReady`, the sim stand-in
    /// for a client timeout.
    pub query_responses: Vec<RpcResponse>,
    /// Final per-node readout of every query still installed when the
    /// run ended: `(query name, node, estimate)`, nodes in ascending
    /// order.
    pub query_estimates: Vec<(String, u32, QueryEstimate)>,
    /// Query-plane messages transmitted (catalog gossip + per-query
    /// aggregation exchanges).
    pub query_messages_sent: usize,
    /// Query-plane messages dropped by the loss model.
    pub query_messages_lost: usize,
    /// Wire bytes of the transmitted query-plane messages, priced by the
    /// real codec ([`epidemic_net::codec::catalog_message_len`] /
    /// [`epidemic_net::codec::query_message_len`]).
    pub query_bytes_sent: usize,
}

impl EventOutcome {
    /// Spread `T_j = last − first` of epoch `j`'s entry window, if
    /// observed.
    pub fn epoch_spread(&self, epoch: u64) -> Option<u64> {
        self.epoch_entries
            .iter()
            .find(|&&(e, _, _)| e == epoch)
            .map(|&(_, first, last)| last - first)
    }

    /// All scalar estimates (instance 0) reported for `epoch`, across
    /// nodes.
    pub fn epoch_estimates(&self, epoch: u64) -> Vec<f64> {
        self.reports
            .iter()
            .flatten()
            .filter(|r| r.epoch == epoch)
            .filter_map(|r| r.scalar(0))
            .collect()
    }

    /// Mean of the scalar estimates reported for `epoch`, or `None` if no
    /// node completed it.
    pub fn mean_epoch_estimate(&self, epoch: u64) -> Option<f64> {
        let estimates = self.epoch_estimates(epoch);
        if estimates.is_empty() {
            None
        } else {
            Some(epidemic_common::stats::mean(&estimates))
        }
    }

    /// Final per-node values of the named query, in ascending node order.
    pub fn query_values(&self, name: &str) -> Vec<f64> {
        self.query_estimates
            .iter()
            .filter(|(n, _, _)| n == name)
            .map(|(_, _, est)| est.value)
            .collect()
    }
}

/// One scheduled event, payload inline. Ordered as a *min*-heap key on
/// `(at, seq)` so `BinaryHeap::pop` yields events in time order without a
/// `Reverse` wrapper or a side table of payloads.
#[derive(Debug)]
struct Event {
    at: u64,
    seq: u64,
    kind: EventKind,
}

#[derive(Debug)]
enum EventKind {
    /// Poll node `i` (its clock reached a self-reported deadline).
    Wake(u32),
    /// Deliver a message to node `i`.
    Deliver(u32, Message),
    /// Apply the failure schedule for cycle `k` (cycle boundaries in
    /// nominal global time).
    FailureTick(u32),
    /// Poll node `i`'s membership timer (gossiped NEWSCAST only).
    WakeView(u32),
    /// Deliver a membership view exchange to node `to`. `reply` marks the
    /// passive side's answer (absorbed without a response); `full` marks a
    /// complete view rather than a delta (the wire tag's full-vs-delta
    /// bit).
    DeliverView {
        to: u32,
        reply: bool,
        full: bool,
        payload: ViewPayload,
    },
    /// Poll node `i`'s query plane (catalog gossip + per-query schedules).
    QueryWake(u32),
    /// Deliver a query-plane frame (destination is inside the payload).
    QueryDeliver(QueryOutbound),
    /// Apply entry `i` of [`EventConfig::query_script`].
    QueryScript(u32),
}

/// `GETNEIGHBOR()` for the query plane: uniform over the live population,
/// excluding the polled node, drawing from the dedicated query stream so
/// the aggregation and membership planes see the same draw sequence with
/// or without queries running.
struct QuerySampler<'a> {
    rng: &'a mut Xoshiro256,
    live: &'a [u32],
    me: Option<usize>,
}

impl PeerSampler for QuerySampler<'_> {
    fn draw_peer(&mut self) -> Option<NodeId> {
        let idx = epidemic_common::sample::index_excluding(self.rng, self.live.len(), self.me)?;
        Some(NodeId::new(u64::from(self.live[idx])))
    }
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: the binary heap is a max-heap, so "greater" must mean
        // "earlier" for pops to come out in time order.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

enum EventOverlay {
    /// Uniform sampling over the live population. Models both the
    /// implicit complete graph and (idealized) NEWSCAST membership, whose
    /// job is precisely to keep the overlay sufficiently random.
    LiveSet,
    /// A static topology; dead neighbors are still sampled and discovered
    /// by timeout, as in a real deployment.
    Static(Graph),
    /// Gossiped NEWSCAST membership: one [`MembershipNode`] per slot
    /// (dead slots keep their state so stale descriptors can point at
    /// them until aged out), exchanging views via queue events.
    Newscast { members: Vec<MembershipNode> },
}

/// Event-driven simulator state, parameterized by a [`Scenario`].
///
/// Construct with [`EventSim::new`], drive to completion with
/// [`EventSim::run`]. Most callers use the [`EventConfig::run`]
/// convenience instead.
pub struct EventSim {
    node_config: NodeConfig,
    delay: (u64, u64),
    duration: u64,
    link_failure: f64,
    message_loss: f64,
    drift_bound: f64,
    failure: crate::failure::FailureModel,
    joiner_value: f64,
    joiner_seed: u64,
    /// `Some` when membership is gossiped; joiners need it to spin up
    /// their own [`MembershipNode`].
    membership_config: Option<MembershipConfig>,
    membership_seed: u64,

    rng: Xoshiro256,
    /// Dedicated stream for membership bootstrap and view-traffic draws:
    /// the main `rng` sees the same draw sequence whether membership is
    /// gossiped or idealized, keeping the two models seed-comparable.
    view_rng: Xoshiro256,
    /// Dedicated stream for query-plane peer draws and traffic: a run
    /// with an empty query script is event-for-event identical to one
    /// without the query plane at all.
    query_rng: Xoshiro256,
    nodes: Vec<GossipNode>,
    drifts: Vec<f64>,
    /// Live node ids, unordered; `live_pos[i]` is `i`'s index in `live`
    /// (or `usize::MAX` when dead, which is also the liveness check) for
    /// O(1) crash removal.
    live: Vec<u32>,
    live_pos: Vec<usize>,
    overlay: EventOverlay,

    queue: BinaryHeap<Event>,
    seq: u64,
    messages_sent: usize,
    messages_lost: usize,
    view_messages_sent: usize,
    view_bytes_sent: usize,
    view_messages_lost: usize,
    epoch_seen: Vec<u64>,
    entries: HashMap<u64, (u64, u64)>,

    /// One query plane per node slot (dead slots keep their state, same
    /// as membership); joiners get an empty plane and catch up through
    /// catalog gossip.
    planes: Vec<QueryPlane>,
    query_config: QueryPlaneConfig,
    /// Seed shared by every plane's per-query gossip nodes.
    query_seed: u64,
    query_script: Vec<QueryAction>,
    /// Earliest scheduled-and-unpopped `QueryWake` per node (`u64::MAX`
    /// when none): wakes are only pushed when they move this earlier, so
    /// stale timers die instead of chaining to the end of the run.
    query_wake_at: Vec<u64>,
    query_messages_sent: usize,
    query_messages_lost: usize,
    query_bytes_sent: usize,
    query_responses: Vec<RpcResponse>,
    /// Per-query estimate accumulators behind the labeled
    /// `epoch.estimate_drift{query=…}` gauges — the sim twin of the mux
    /// runtime's per-query drift tracker.
    query_drift: HashMap<String, (Vec<(u64, OnlineStats)>, Gauge)>,

    trace_capacity: usize,
    snapshot: Option<SnapshotSpec>,
    next_snapshot: u64,
    registry: Registry,
    /// `agg.exchanges` — push-pull exchanges initiated (request sends).
    agg_exchanges: Counter,
    /// `membership.delta_bytes` — wire bytes of delta view exchanges.
    delta_bytes: Counter,
    /// `sim.live_nodes` — population size after the failure schedule.
    live_gauge: Gauge,
    rho_gauge: Gauge,
    drift_gauge: Gauge,
    /// Variance of the initial local values — every epoch's var_0, since
    /// epochs restart from fresh local values.
    var0: f64,
    /// Per-epoch estimate accumulators behind the convergence gauges.
    rho_epochs: Vec<(u64, OnlineStats)>,
    /// Epoch reports drained incrementally (at epoch transitions) so the
    /// gauges move while the run is live; merged with the final drain
    /// into [`EventOutcome::reports`].
    collected: Vec<Vec<EpochReport>>,
}

impl std::fmt::Debug for EventSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventSim")
            .field("nodes", &self.nodes.len())
            .field("alive", &self.live.len())
            .field("queued", &self.queue.len())
            .finish()
    }
}

impl EventSim {
    /// Builds the initial simulation state for `config` from `seed`.
    ///
    /// # Panics
    ///
    /// Panics on an inconsistent scenario or an empty delay range.
    pub fn new(config: &EventConfig, seed: u64) -> Self {
        let scenario = &config.scenario;
        scenario.validate();
        assert!(config.delay.1 > config.delay.0, "empty delay range");
        let n = scenario.n;
        let mut rng = Xoshiro256::seed_from_u64(seed);

        // Everything membership-related draws from its own stream,
        // decorrelated both from the per-node aggregation streams (seeded
        // from `joiner_seed`) and from the main sim RNG. Keeping the main
        // stream untouched here means an Idealized and a Gossip run of
        // the same seed materialize identical values, drifts, and failure
        // draws — the membership models stay comparable pairwise.
        let membership_seed = seed ^ 0x4E57_C057;
        let mut view_rng = Xoshiro256::seed_from_u64(membership_seed);
        let mut membership_config = None;
        let overlay = match (scenario.overlay, config.membership) {
            (OverlaySpec::Complete, _)
            | (OverlaySpec::Newscast { .. }, MembershipModel::Idealized) => EventOverlay::LiveSet,
            (OverlaySpec::Static(kind), _) => EventOverlay::Static(
                kind.generate(n, &mut rng)
                    .expect("invalid topology parameters"),
            ),
            (OverlaySpec::Newscast { c }, model) => {
                assert!(c >= 1 && c < n, "view size must satisfy 1 <= c < n");
                let mcfg = MembershipConfig {
                    view_size: c,
                    cycle_length: config.node.cycle_length(),
                    delta_views: matches!(model, MembershipModel::Gossip),
                    // The sim hosts every node in one process: track the
                    // whole partner universe so deltas stay deltas.
                    knowledge_peers: n,
                };
                membership_config = Some(mcfg);
                let mut members: Vec<MembershipNode> = (0..n)
                    .map(|i| MembershipNode::new(i as u32, mcfg, membership_seed))
                    .collect();
                // Same bootstrap as the cycle engine's `Overlay::random_init`:
                // `c` uniformly random distinct peers at timestamp 0.
                for (node, member) in members.iter_mut().enumerate() {
                    for raw in view_rng.sample_distinct(n - 1, c) {
                        let peer = if raw >= node { raw + 1 } else { raw };
                        member.add_seed(peer as u32, 0);
                    }
                }
                EventOverlay::Newscast { members }
            }
        };
        let values = scenario.values.materialize(n, &mut rng);
        let joiner_seed = seed ^ 0xE7E7;
        let mut nodes: Vec<GossipNode> = (0..n)
            .map(|i| {
                GossipNode::founder(
                    NodeId::new(i as u64),
                    config.node.clone(),
                    values[i],
                    joiner_seed,
                )
            })
            .collect();
        if config.trace_capacity > 0 {
            for node in &mut nodes {
                node.set_trace_capacity(config.trace_capacity);
            }
        }
        let spawn_stats: OnlineStats = values.iter().copied().collect();
        let registry = Registry::new();
        // The query plane's own streams, decorrelated like membership's:
        // an empty script leaves every other stream untouched.
        let query_seed = seed ^ 0x5152_594E;
        let query_rng = Xoshiro256::seed_from_u64(seed ^ 0x0051_4752);
        let planes: Vec<QueryPlane> = (0..n)
            .map(|i| {
                QueryPlane::new(
                    NodeId::new(i as u64),
                    config.query,
                    query_seed,
                    registry.clone(),
                )
            })
            .collect();
        registry
            .gauge("epoch.rho_theory")
            .set(0.5 / std::f64::consts::E.sqrt());
        registry.gauge("sim.live_nodes").set(n as f64);
        let drifts: Vec<f64> = (0..n)
            .map(|_| 1.0 + config.drift * (2.0 * rng.next_f64() - 1.0))
            .collect();
        let epoch_seen: Vec<u64> = nodes.iter().map(GossipNode::epoch).collect();
        let mut entries = HashMap::new();
        entries.insert(0, (0, 0));

        let mut sim = EventSim {
            node_config: config.node.clone(),
            delay: config.delay,
            duration: config.duration,
            link_failure: scenario.comm.link_failure,
            message_loss: scenario.comm.message_loss,
            drift_bound: config.drift,
            failure: scenario.failure,
            joiner_value: scenario.joiner_value,
            joiner_seed,
            membership_config,
            membership_seed,
            rng,
            view_rng,
            query_rng,
            nodes,
            drifts,
            live: (0..n as u32).collect(),
            live_pos: (0..n).collect(),
            overlay,
            queue: BinaryHeap::new(),
            seq: 0,
            messages_sent: 0,
            messages_lost: 0,
            view_messages_sent: 0,
            view_bytes_sent: 0,
            view_messages_lost: 0,
            epoch_seen,
            entries,
            planes,
            query_config: config.query,
            query_seed,
            query_script: config.query_script.clone(),
            query_wake_at: vec![u64::MAX; n],
            query_messages_sent: 0,
            query_messages_lost: 0,
            query_bytes_sent: 0,
            query_responses: Vec::new(),
            query_drift: HashMap::new(),
            trace_capacity: config.trace_capacity,
            next_snapshot: config
                .snapshot
                .as_ref()
                .map_or(u64::MAX, |s| s.every_ticks.max(1)),
            snapshot: config.snapshot.clone(),
            agg_exchanges: registry.counter("agg.exchanges"),
            delta_bytes: registry.counter("membership.delta_bytes"),
            live_gauge: registry.gauge("sim.live_nodes"),
            rho_gauge: registry.gauge("epoch.variance_reduction_rho"),
            drift_gauge: registry.gauge("epoch.estimate_drift"),
            registry,
            var0: spawn_stats.population_variance(),
            rho_epochs: Vec::new(),
            collected: (0..n).map(|_| Vec::new()).collect(),
        };
        // The membership plane traces through the same per-node rings.
        if config.trace_capacity > 0 {
            if let EventOverlay::Newscast { members } = &mut sim.overlay {
                for member in members.iter_mut() {
                    member.set_trace_capacity(config.trace_capacity);
                }
            }
        }
        // Failure schedule ticks at nominal cycle boundaries, starting
        // with cycle 0's failures before anything else happens.
        if !matches!(sim.failure, crate::failure::FailureModel::None) {
            sim.push(0, EventKind::FailureTick(0));
        }
        for i in 0..sim.nodes.len() {
            let at = sim.to_global(sim.nodes[i].next_deadline(), i);
            sim.push(at, EventKind::Wake(i as u32));
        }
        // Membership timers tick independently of the aggregation timers
        // (each node's gossip phase is its own).
        if let EventOverlay::Newscast { members } = &sim.overlay {
            let wakes: Vec<u64> = members
                .iter()
                .enumerate()
                .map(|(i, m)| sim.to_global(m.next_cycle_at(), i))
                .collect();
            for (i, at) in wakes.into_iter().enumerate() {
                sim.push(at, EventKind::WakeView(i as u32));
            }
        }
        // Scripted client RPCs against the query plane. Nothing else is
        // scheduled up front: planes wake only once a query exists.
        let script_times: Vec<u64> = sim.query_script.iter().map(|a| a.at).collect();
        for (i, at) in script_times.into_iter().enumerate() {
            sim.push(at, EventKind::QueryScript(i as u32));
        }
        sim
    }

    fn push(&mut self, at: u64, kind: EventKind) {
        self.seq += 1;
        self.queue.push(Event {
            at,
            seq: self.seq,
            kind,
        });
    }

    fn to_local(&self, global: u64, node: usize) -> u64 {
        (global as f64 * self.drifts[node]) as u64
    }

    fn to_global(&self, local: u64, node: usize) -> u64 {
        (local as f64 / self.drifts[node]).ceil() as u64
    }

    /// `GETNEIGHBOR()` for `node` under the configured overlay.
    fn sample_peer(&mut self, node: usize) -> Option<NodeId> {
        match &mut self.overlay {
            EventOverlay::LiveSet => {
                // Uniform over live nodes, skipping the initiator's slot.
                let me = match self.live_pos[node] {
                    usize::MAX => None,
                    pos => Some(pos),
                };
                let idx =
                    epidemic_common::sample::index_excluding(&mut self.rng, self.live.len(), me)?;
                Some(NodeId::new(u64::from(self.live[idx])))
            }
            EventOverlay::Static(g) => {
                // Dead neighbors are sampled too: the request goes out and
                // silently dies, costing the initiator a timeout.
                let peer = g.sample_neighbor(node, &mut self.rng)?;
                Some(NodeId::new(peer as u64))
            }
            EventOverlay::Newscast { members } => {
                // A uniform member of the node's own partial view. The
                // entry may describe a crashed peer that has not aged out
                // yet — the request then dies in flight and costs the
                // initiator a timeout, exactly like a real deployment.
                let peer = members[node].sample_peer()?;
                Some(NodeId::new(u64::from(peer)))
            }
        }
    }

    #[inline]
    fn is_alive(&self, node: usize) -> bool {
        self.live_pos[node] != usize::MAX
    }

    fn kill(&mut self, node: usize) {
        let pos = self.live_pos[node];
        if pos == usize::MAX {
            return;
        }
        self.live.swap_remove(pos);
        if let Some(&moved) = self.live.get(pos) {
            self.live_pos[moved as usize] = pos;
        }
        self.live_pos[node] = usize::MAX;
    }

    /// Applies cycle `k`'s crash/churn schedule at global time `at`.
    fn failure_tick(&mut self, k: u32, at: u64) {
        let crashes = self.failure.crashes_at(k, self.live.len());
        if crashes > 0 {
            let victims: Vec<u32> = self
                .rng
                .sample_distinct(self.live.len(), crashes.min(self.live.len()))
                .into_iter()
                .map(|pos| self.live[pos])
                .collect();
            for v in victims {
                self.kill(v as usize);
            }
        }
        for _ in 0..self.failure.joins_at(k) {
            if self.live.is_empty() {
                break; // nobody left to introduce the joiner
            }
            let introducer = self.live[self.rng.index(self.live.len())] as usize;
            self.join(introducer, at);
        }
        // Schedule the next boundary.
        let next_at = u64::from(k + 1) * self.node_config.cycle_length();
        if next_at <= self.duration {
            self.push(next_at, EventKind::FailureTick(k + 1));
        }
        self.live_gauge.set(self.live.len() as f64);
    }

    /// Adds one joiner bootstrapped through `introducer` at global `at`
    /// (Section 4.2: the contacted member supplies the running epoch and
    /// the expected start of the next one).
    fn join(&mut self, introducer: usize, at: u64) {
        let idx = self.nodes.len();
        let drift = 1.0 + self.drift_bound * (2.0 * self.rng.next_f64() - 1.0);
        // Register the drift first so the joiner shares the same clock
        // conversions as every other node.
        self.drifts.push(drift);
        let intro = &self.nodes[introducer];
        let intro_epoch = intro.epoch();
        let remaining = u64::from(self.node_config.gamma().saturating_sub(intro.cycles_run()));
        let next_epoch_global = at + remaining * self.node_config.cycle_length();
        let mut node = GossipNode::joiner(
            NodeId::new(idx as u64),
            self.node_config.clone(),
            self.joiner_value,
            self.joiner_seed,
            intro_epoch,
            self.to_local(next_epoch_global, idx),
        );
        if self.trace_capacity > 0 {
            node.set_trace_capacity(self.trace_capacity);
        }
        let wake_at = self.to_global(node.next_deadline(), idx);
        self.epoch_seen.push(node.epoch());
        self.nodes.push(node);
        self.collected.push(Vec::new());
        // The joiner's query plane starts empty and catches up through
        // catalog gossip; its first wake is scheduled by that delivery.
        self.planes.push(QueryPlane::new(
            NodeId::new(idx as u64),
            self.query_config,
            self.query_seed,
            self.registry.clone(),
        ));
        self.query_wake_at.push(u64::MAX);
        self.live_pos.push(self.live.len());
        self.live.push(idx as u32);
        self.push(wake_at.max(at + 1), EventKind::Wake(idx as u32));
        // Under gossiped membership the joiner also bootstraps a view from
        // the introducer's current snapshot plus a fresh descriptor of the
        // introducer itself (the out-of-band discovery of Section 4.2).
        if let Some(mcfg) = self.membership_config {
            let local_at = self.to_local(at, idx);
            let view_wake = match &mut self.overlay {
                EventOverlay::Newscast { members } => {
                    let mut member = MembershipNode::new(idx as u32, mcfg, self.membership_seed);
                    if self.trace_capacity > 0 {
                        member.set_trace_capacity(self.trace_capacity);
                    }
                    let snapshot: Vec<Descriptor> = members[introducer].view().entries().to_vec();
                    member.bootstrap(&snapshot);
                    member.add_seed(introducer as u32, local_at);
                    let next = member.next_cycle_at();
                    members.push(member);
                    next
                }
                _ => unreachable!("membership_config implies a gossiped overlay"),
            };
            let view_at = self.to_global(view_wake, idx);
            self.push(view_at.max(at + 1), EventKind::WakeView(idx as u32));
        }
    }

    /// Sends `out` from the loss models' point of view and schedules its
    /// delivery.
    fn transmit(&mut self, at: u64, message: Message, to: NodeId) {
        self.messages_sent += 1;
        // Link failure drops the whole exchange, i.e. the request.
        let is_request = matches!(message.body, MessageBody::Request(_));
        if is_request {
            self.agg_exchanges.inc();
        }
        if is_request && self.link_failure > 0.0 && self.rng.next_bool(self.link_failure) {
            self.messages_lost += 1;
            return;
        }
        if self.message_loss > 0.0 && self.rng.next_bool(self.message_loss) {
            self.messages_lost += 1;
            return;
        }
        let delay = self.rng.range_u64(self.delay.0, self.delay.1);
        self.push(at + delay, EventKind::Deliver(to.index() as u32, message));
    }

    /// Sends a membership view exchange through the same loss and delay
    /// model as aggregation traffic. A lost request kills the whole
    /// exchange; a lost reply leaves only the passive side updated —
    /// harmless for membership, since views carry no conserved mass.
    fn transmit_view(&mut self, at: u64, to: u32, payload: ViewPayload, reply: bool, full: bool) {
        self.view_messages_sent += 1;
        // Sender-side accounting: lost messages still cost uplink bytes.
        // Full and delta messages share one wire layout, so the codec
        // prices both by descriptor count — deltas are cheaper exactly
        // because they carry fewer descriptors.
        let wire_len = epidemic_net::codec::view_message_len(payload.descriptors.len());
        self.view_bytes_sent += wire_len;
        if !full {
            self.delta_bytes.add(wire_len as u64);
        }
        if !reply && self.link_failure > 0.0 && self.view_rng.next_bool(self.link_failure) {
            self.view_messages_lost += 1;
            return;
        }
        if self.message_loss > 0.0 && self.view_rng.next_bool(self.message_loss) {
            self.view_messages_lost += 1;
            return;
        }
        let delay = self.view_rng.range_u64(self.delay.0, self.delay.1);
        self.push(
            at + delay,
            EventKind::DeliverView {
                to,
                reply,
                full,
                payload,
            },
        );
    }

    /// Sends a query-plane frame (catalog gossip or per-query
    /// aggregation) through the same loss and delay model as the other
    /// planes, priced in real codec bytes, drawing from the query stream.
    fn transmit_query(&mut self, at: u64, frame: QueryOutbound) {
        self.query_messages_sent += 1;
        let wire_len = match &frame {
            QueryOutbound::Aggregation { query, message, .. } => {
                epidemic_net::codec::query_message_len(query, message)
            }
            QueryOutbound::Catalog { entries, .. } => {
                epidemic_net::codec::catalog_message_len(entries)
            }
        };
        self.query_bytes_sent += wire_len;
        // Link failure drops the whole push-pull exchange, i.e. the
        // request; catalog pushes are one-way and only see message loss.
        let is_request = matches!(
            &frame,
            QueryOutbound::Aggregation { message, .. }
                if matches!(message.body, MessageBody::Request(_))
        );
        if is_request && self.link_failure > 0.0 && self.query_rng.next_bool(self.link_failure) {
            self.query_messages_lost += 1;
            return;
        }
        if self.message_loss > 0.0 && self.query_rng.next_bool(self.message_loss) {
            self.query_messages_lost += 1;
            return;
        }
        let delay = self.query_rng.range_u64(self.delay.0, self.delay.1);
        self.push(at + delay, EventKind::QueryDeliver(frame));
    }

    /// Polls node `i`'s query plane and transmits whatever comes out.
    fn poll_query_plane(&mut self, i: usize, at: u64) {
        let local_now = self.to_local(at, i);
        let out = {
            let me = match self.live_pos[i] {
                usize::MAX => None,
                pos => Some(pos),
            };
            let mut sampler = QuerySampler {
                rng: &mut self.query_rng,
                live: &self.live,
                me,
            };
            self.planes[i].poll(local_now, &mut sampler)
        };
        for frame in out {
            self.transmit_query(at, frame);
        }
        self.harvest_query_epochs(i);
        self.schedule_query_wake(i, at);
    }

    /// Schedules node `i`'s next query wake if the plane's deadline moved
    /// earlier than whatever is already queued (installs do exactly that).
    fn schedule_query_wake(&mut self, i: usize, at: u64) {
        let deadline = self.planes[i].next_deadline();
        if deadline == u64::MAX {
            return; // empty plane: nothing to wake for
        }
        let target = self.to_global(deadline, i).max(at + 1);
        if target < self.query_wake_at[i] {
            self.query_wake_at[i] = target;
            self.push(target, EventKind::QueryWake(i as u32));
        }
    }

    /// Feeds node `i`'s freshly completed query epochs into the labeled
    /// per-query drift gauges.
    fn harvest_query_epochs(&mut self, i: usize) {
        for epoch in self.planes[i].take_epochs() {
            if let Some(estimate) = epoch.estimate {
                self.observe_query_estimate(&epoch.query, epoch.epoch, estimate);
            }
        }
    }

    /// The per-query twin of [`EventSim::observe_estimate`]: publishes
    /// `epoch.estimate_drift{query=…}` from the newest epoch with at
    /// least two estimates, keeping a bounded epoch window.
    fn observe_query_estimate(&mut self, query: &str, epoch: u64, estimate: f64) {
        let registry = &self.registry;
        let (epochs, gauge) = self
            .query_drift
            .entry(query.to_string())
            .or_insert_with(|| {
                let gauge = registry.gauge_with("epoch.estimate_drift", &[("query", query)]);
                (Vec::new(), gauge)
            });
        let stats = match epochs.iter_mut().find(|(e, _)| *e == epoch) {
            Some((_, s)) => s,
            None => {
                epochs.push((epoch, OnlineStats::new()));
                &mut epochs.last_mut().unwrap().1
            }
        };
        stats.push(estimate);
        if let Some((_, s)) = epochs
            .iter()
            .filter(|(_, s)| s.count() >= 2)
            .max_by_key(|(e, _)| *e)
        {
            gauge.set(s.spread());
        }
        if let Some(newest) = epochs.iter().map(|(e, _)| *e).max() {
            epochs.retain(|(e, _)| *e + 4 > newest);
        }
    }

    /// Drains `node`'s freshly completed epoch reports into `collected`,
    /// feeding each estimate into the convergence gauges so they track
    /// the run live instead of only at the end.
    fn harvest_reports(&mut self, node: usize) {
        let fresh = self.nodes[node].take_reports();
        if fresh.is_empty() {
            return;
        }
        for r in &fresh {
            if let Some(est) = r.scalar(0) {
                self.observe_estimate(r.epoch, est);
            }
        }
        self.collected[node].extend(fresh);
    }

    /// Folds one end-of-epoch estimate into the per-epoch accumulators
    /// and republishes `epoch.variance_reduction_rho` (observed
    /// ρ = (var_E / var_0)^(1/γ), to compare against the 1/(2√e) bound
    /// in `epoch.rho_theory`) and `epoch.estimate_drift`.
    fn observe_estimate(&mut self, epoch: u64, estimate: f64) {
        let stats = match self.rho_epochs.iter_mut().find(|(e, _)| *e == epoch) {
            Some((_, s)) => s,
            None => {
                self.rho_epochs.push((epoch, OnlineStats::new()));
                &mut self.rho_epochs.last_mut().unwrap().1
            }
        };
        stats.push(estimate);
        // Publish from the newest epoch with at least two estimates.
        if let Some((_, s)) = self
            .rho_epochs
            .iter()
            .filter(|(_, s)| s.count() >= 2)
            .max_by_key(|(e, _)| *e)
        {
            let var_e = s.population_variance();
            if self.var0 > 0.0 && var_e > 0.0 {
                self.rho_gauge
                    .set((var_e / self.var0).powf(1.0 / f64::from(self.node_config.gamma())));
            }
            self.drift_gauge.set(s.spread());
        }
        // Keep only a recent epoch window so long runs hold O(1) state.
        if let Some(newest) = self.rho_epochs.iter().map(|(e, _)| *e).max() {
            self.rho_epochs.retain(|(e, _)| *e + 4 > newest);
        }
    }

    /// Drives the event loop to `duration` and harvests the outcome.
    pub fn run(mut self) -> EventOutcome {
        while let Some(event) = self.queue.pop() {
            let at = event.at;
            if at > self.duration {
                break;
            }
            // Periodic registry snapshot (next_snapshot is u64::MAX when
            // no snapshot sink is configured).
            while self.next_snapshot <= at {
                if let Some(spec) = &self.snapshot {
                    let _ = write_snapshot(&spec.path, &self.registry);
                }
                self.next_snapshot = self.next_snapshot.saturating_add(
                    self.snapshot
                        .as_ref()
                        .map_or(u64::MAX, |s| s.every_ticks.max(1)),
                );
            }
            let (node_idx, outbound) = match event.kind {
                EventKind::FailureTick(k) => {
                    self.failure_tick(k, at);
                    continue;
                }
                EventKind::WakeView(i) => {
                    let i = i as usize;
                    if self.is_alive(i) {
                        let local_now = self.to_local(at, i);
                        let EventOverlay::Newscast { members } = &mut self.overlay else {
                            unreachable!("WakeView scheduled without a gossiped overlay");
                        };
                        let out = members[i].poll_exchange(local_now);
                        let next = members[i].next_cycle_at();
                        let next_at = self.to_global(next, i).max(at + 1);
                        self.push(next_at, EventKind::WakeView(i as u32));
                        if let Some((peer, payload, full)) = out {
                            self.transmit_view(at, peer, payload, false, full);
                        }
                    }
                    continue; // stale timer of a crashed node: chain ends
                }
                EventKind::DeliverView {
                    to,
                    reply,
                    full,
                    payload,
                } => {
                    let to = to as usize;
                    if self.is_alive(to) {
                        let local_now = self.to_local(at, to);
                        let EventOverlay::Newscast { members } = &mut self.overlay else {
                            unreachable!("DeliverView scheduled without a gossiped overlay");
                        };
                        if reply {
                            // Active side absorbs the responder's pre-merge
                            // view; the exchange is complete.
                            members[to].absorb_reply_delta(&payload, full, local_now);
                        } else {
                            let (response, resp_full) =
                                members[to].handle_exchange_delta(&payload, full, local_now);
                            self.transmit_view(at, payload.from, response, true, resp_full);
                        }
                    }
                    continue; // in-flight view exchange to a crashed node
                }
                EventKind::QueryWake(i) => {
                    let i = i as usize;
                    if at != self.query_wake_at[i] {
                        continue; // superseded by an earlier reschedule
                    }
                    self.query_wake_at[i] = u64::MAX;
                    if self.is_alive(i) {
                        self.poll_query_plane(i, at);
                    }
                    continue; // stale timer of a crashed node: chain ends
                }
                EventKind::QueryDeliver(frame) => {
                    let to = match &frame {
                        QueryOutbound::Aggregation { to, .. }
                        | QueryOutbound::Catalog { to, .. } => to.index(),
                    };
                    if self.is_alive(to) {
                        let local_now = self.to_local(at, to);
                        match frame {
                            QueryOutbound::Catalog { entries, .. } => {
                                self.planes[to].handle_catalog(&entries, local_now);
                            }
                            QueryOutbound::Aggregation { query, message, .. } => {
                                if let Some(reply) =
                                    self.planes[to].handle_aggregation(&query, &message, local_now)
                                {
                                    self.transmit_query(at, reply);
                                }
                            }
                        }
                        self.harvest_query_epochs(to);
                        self.schedule_query_wake(to, at);
                    }
                    continue; // in-flight query frame to a crashed node
                }
                EventKind::QueryScript(idx) => {
                    let action = self.query_script[idx as usize].clone();
                    let i = action.node as usize;
                    if self.is_alive(i) {
                        let local_now = self.to_local(at, i);
                        let response = self.planes[i].handle_rpc(&action.request, local_now);
                        self.query_responses.push(response);
                        self.schedule_query_wake(i, at);
                    } else {
                        // Client hit a crashed node: the sim stand-in
                        // for a request that times out.
                        self.query_responses.push(RpcResponse::reject(
                            action.request.id(),
                            RpcStatus::NotReady,
                        ));
                    }
                    continue;
                }
                EventKind::Wake(i) => {
                    let i = i as usize;
                    if !self.is_alive(i) {
                        continue; // stale wake-up of a crashed node
                    }
                    let local_now = self.to_local(at, i);
                    let peer = self.sample_peer(i);
                    let out = self.nodes[i].poll(local_now, peer);
                    (i, out)
                }
                EventKind::Deliver(i, msg) => {
                    let i = i as usize;
                    if !self.is_alive(i) {
                        continue; // in-flight delivery to a crashed node
                    }
                    let local_now = self.to_local(at, i);
                    let out = self.nodes[i].handle(&msg, local_now);
                    (i, out)
                }
            };
            if let Some(out) = outbound {
                self.transmit(at, out.message, out.to);
            }
            // Track epoch transitions for the synchronization measurement.
            let epoch_now = self.nodes[node_idx].epoch();
            if epoch_now != self.epoch_seen[node_idx] {
                self.epoch_seen[node_idx] = epoch_now;
                let entry = self.entries.entry(epoch_now).or_insert((at, at));
                entry.0 = entry.0.min(at);
                entry.1 = entry.1.max(at);
                // A transition means the previous epoch's report just
                // landed: fold it into the convergence gauges now.
                self.harvest_reports(node_idx);
            }
            // Reschedule this node at its next deadline.
            let next = self.to_global(self.nodes[node_idx].next_deadline(), node_idx);
            self.push(next.max(at + 1), EventKind::Wake(node_idx as u32));
        }

        let view_health = match &self.overlay {
            EventOverlay::Newscast { members } => Some(crate::metrics::view_health(
                self.live.iter().map(|&i| members[i as usize].view()),
                |peer| self.is_alive(peer as usize),
            )),
            _ => None,
        };
        if let Some(health) = &view_health {
            self.registry
                .gauge("membership.view_mean_size")
                .set(health.mean_size);
            self.registry
                .gauge("membership.view_dead_fraction")
                .set(health.dead_entry_fraction);
        }
        // Drain the tail: reports whose epochs were still open at the end
        // plus everything after the last observed transition.
        for i in 0..self.nodes.len() {
            self.harvest_reports(i);
            self.harvest_query_epochs(i);
        }
        // Final readout of every installed query at every live node.
        let mut live_sorted = self.live.clone();
        live_sorted.sort_unstable();
        let mut query_estimates = Vec::new();
        for &i in &live_sorted {
            let i = i as usize;
            for name in self.planes[i].installed() {
                if let Ok(est) = self.planes[i].estimate(&name) {
                    query_estimates.push((name, i as u32, est));
                }
            }
        }
        self.live_gauge.set(self.live.len() as f64);
        let traces: Vec<Vec<TraceEvent>> = (0..self.nodes.len())
            .map(|i| {
                let mut events = self.nodes[i].take_trace();
                if let EventOverlay::Newscast { members } = &mut self.overlay {
                    events.extend(members[i].take_trace());
                }
                events
            })
            .collect();
        // Final snapshot so a configured sink always ends with the
        // completed run's gauges.
        if let Some(spec) = &self.snapshot {
            let _ = write_snapshot(&spec.path, &self.registry);
        }
        let mut epoch_entries: Vec<(u64, u64, u64)> = self
            .entries
            .into_iter()
            .map(|(e, (first, last))| (e, first, last))
            .collect();
        epoch_entries.sort_unstable();
        EventOutcome {
            reports: self.collected,
            epoch_entries,
            messages_sent: self.messages_sent,
            messages_lost: self.messages_lost,
            view_messages_sent: self.view_messages_sent,
            view_bytes_sent: self.view_bytes_sent,
            view_messages_lost: self.view_messages_lost,
            view_health,
            final_alive: self.live.len(),
            traces,
            registry: self.registry,
            query_responses: self.query_responses,
            query_estimates,
            query_messages_sent: self.query_messages_sent,
            query_messages_lost: self.query_messages_lost,
            query_bytes_sent: self.query_bytes_sent,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failure::{CommFailure, FailureModel};
    use crate::scenario::ValueInit;
    use epidemic_topology::TopologyKind;

    fn node_config(gamma: u32) -> NodeConfig {
        NodeConfig::builder()
            .gamma(gamma)
            .cycle_length(1_000)
            .timeout(200)
            .instance(InstanceSpec::AVERAGE)
            .build()
            .unwrap()
    }

    fn base_config() -> EventConfig {
        EventConfig {
            scenario: Scenario {
                n: 64,
                values: ValueInit::Linear,
                ..Scenario::default()
            },
            node: node_config(15),
            delay: (10, 50),
            drift: 0.0,
            duration: 40_000,
            membership: MembershipModel::Gossip,
            ..EventConfig::default()
        }
    }

    #[test]
    fn epochs_complete_and_converge() {
        let out = base_config().run(1);
        let truth = 63.0 / 2.0;
        let mut reported = 0;
        for reports in &out.reports {
            for r in reports {
                reported += 1;
                let v = r.scalar(0).unwrap();
                assert!((v - truth).abs() < 1.0, "epoch estimate {v} vs {truth}");
            }
        }
        assert!(reported >= 64, "only {reported} epoch reports");
        assert_eq!(out.final_alive, 64);
    }

    #[test]
    fn message_loss_only_slows_down() {
        let mut cfg = base_config();
        cfg.scenario.comm = CommFailure::messages(0.2);
        cfg.duration = 60_000;
        cfg.node = node_config(30);
        let out = cfg.run(1);
        assert!(out.messages_lost > 0);
        let truth = 63.0 / 2.0;
        let mut count = 0;
        for reports in &out.reports {
            for r in reports {
                // Loss perturbs the mass slightly; estimates stay close.
                let v = r.scalar(0).unwrap();
                assert!((v - truth).abs() < truth * 0.5, "estimate {v}");
                count += 1;
            }
        }
        assert!(count > 0);
    }

    #[test]
    fn epoch_sync_bounds_spread_under_drift() {
        let mut cfg = base_config();
        cfg.drift = 0.05; // ±5% clock drift
        cfg.duration = 120_000;
        let out = cfg.run(1);
        // Find a mid-simulation epoch and check its entry spread is well
        // below one epoch length (gamma * cycle = 15_000 ticks).
        let spread = out.epoch_spread(3).expect("epoch 3 never entered");
        assert!(
            spread < 15_000 / 2,
            "epoch spread {spread} not bounded by synchronization"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = base_config().run(1);
        let b = base_config().run(1);
        assert_eq!(a.messages_sent, b.messages_sent);
        assert_eq!(a.epoch_entries, b.epoch_entries);
    }

    #[test]
    fn outcome_spread_accessor() {
        let out = base_config().run(1);
        assert!(out.epoch_spread(0).is_some());
        assert_eq!(out.epoch_spread(9_999), None);
    }

    #[test]
    fn static_overlay_converges_with_timeouts() {
        let mut cfg = base_config();
        cfg.scenario.overlay = OverlaySpec::Static(TopologyKind::Random { k: 10 });
        let out = cfg.run(2);
        let est = out.mean_epoch_estimate(0).expect("no epoch completed");
        let truth = 63.0 / 2.0;
        assert!((est - truth).abs() < 1.5, "estimate {est} vs {truth}");
    }

    #[test]
    fn sudden_death_drops_in_flight_messages() {
        let mut cfg = base_config();
        cfg.scenario.failure = FailureModel::SuddenDeath {
            fraction: 0.5,
            at_cycle: 4,
        };
        let out = cfg.run(3);
        assert_eq!(out.final_alive, 32);
        // Survivors keep completing epochs after the wave.
        let late_epochs: usize = out
            .reports
            .iter()
            .flatten()
            .filter(|r| r.epoch >= 1)
            .count();
        assert!(late_epochs > 0, "no epochs completed after the crash wave");
    }

    #[test]
    fn churn_keeps_population_constant() {
        let mut cfg = base_config();
        cfg.scenario.overlay = OverlaySpec::Newscast { c: 15 };
        cfg.scenario.failure = FailureModel::Churn { per_cycle: 2 };
        let out = cfg.run(4);
        assert_eq!(out.final_alive, 64);
        assert!(out.mean_epoch_estimate(0).is_some());
        // Membership really was gossiped, not idealized away.
        assert!(out.view_messages_sent > 0, "no view exchanges happened");
    }

    #[test]
    fn view_bytes_track_codec_sizes() {
        let c = 15;
        let mut cfg = base_config();
        cfg.scenario.overlay = OverlaySpec::Newscast { c };
        let bounds = |out: &EventOutcome| {
            // Every view message carries between 0 (empty delta) and c + 1
            // descriptors; the byte total must price each message inside
            // those codec bounds.
            let lo = out.view_messages_sent * epidemic_net::codec::view_message_len(0);
            let hi = out.view_messages_sent * epidemic_net::codec::view_message_len(c + 1);
            assert!(
                (lo..=hi).contains(&out.view_bytes_sent),
                "view_bytes_sent {} outside [{lo}, {hi}]",
                out.view_bytes_sent
            );
            hi
        };
        let delta = cfg.run(5);
        assert!(delta.view_messages_sent > 0);
        bounds(&delta);
        cfg.membership = MembershipModel::FullViews;
        let full = cfg.run(5);
        let full_hi = bounds(&full);
        // With full views every warm exchange ships the whole view: the
        // mean message must cost more than half the maximum…
        assert!(
            full.view_bytes_sent > full_hi / 2,
            "full-view traffic suspiciously cheap: {} of max {full_hi}",
            full.view_bytes_sent
        );
        // …while delta gossip ships strictly less per message once
        // partners know each other's entries.
        let delta_mean = delta.view_bytes_sent as f64 / delta.view_messages_sent as f64;
        let full_mean = full.view_bytes_sent as f64 / full.view_messages_sent as f64;
        assert!(
            delta_mean < 0.8 * full_mean,
            "deltas not cheaper: {delta_mean:.1} vs {full_mean:.1} bytes/message"
        );
        // Idealized membership hides the entire bandwidth cost.
        cfg.membership = MembershipModel::Idealized;
        assert_eq!(cfg.run(5).view_bytes_sent, 0);
    }

    #[test]
    fn delta_views_converge_like_full_views() {
        // Conformance: the delta path must reach the same view health and
        // aggregation fidelity as full-view gossip — it only saves bytes.
        let mut cfg = base_config();
        cfg.scenario.overlay = OverlaySpec::Newscast { c: 15 };
        let delta = cfg.run(5);
        cfg.membership = MembershipModel::FullViews;
        let full = cfg.run(5);
        let truth = 63.0 / 2.0;
        for (label, out) in [("delta", &delta), ("full", &full)] {
            let est = out.mean_epoch_estimate(0).expect("epoch 0 completed");
            assert!((est - truth).abs() < 1.0, "{label} estimate {est}");
            let health = out.view_health.as_ref().expect("gossiped membership");
            assert_eq!(health.views, 64, "{label} lost views");
            assert!(health.mean_size > 13.0, "{label} views starved: {health:?}");
            assert_eq!(
                health.dead_entry_fraction, 0.0,
                "{label} holds dead entries with no churn"
            );
        }
    }

    #[test]
    fn gossiped_membership_converges_like_idealized() {
        let mut cfg = base_config();
        cfg.scenario.overlay = OverlaySpec::Newscast { c: 15 };
        let gossiped = cfg.run(5);
        cfg.membership = MembershipModel::Idealized;
        let idealized = cfg.run(5);
        let truth = 63.0 / 2.0;
        let g = gossiped.mean_epoch_estimate(0).expect("gossiped epoch 0");
        let i = idealized.mean_epoch_estimate(0).expect("idealized epoch 0");
        assert!((g - truth).abs() < 1.0, "gossiped estimate {g} vs {truth}");
        assert!((i - truth).abs() < 1.0, "idealized estimate {i} vs {truth}");
        // Only the gossiped model pays the membership traffic.
        assert!(gossiped.view_messages_sent > 0);
        assert_eq!(idealized.view_messages_sent, 0);
    }

    #[test]
    fn view_exchanges_respect_loss_model() {
        let mut cfg = base_config();
        cfg.scenario.overlay = OverlaySpec::Newscast { c: 15 };
        cfg.scenario.comm = CommFailure::messages(0.3);
        let out = cfg.run(6);
        assert!(out.view_messages_lost > 0, "loss never hit view traffic");
        assert!(
            out.view_messages_lost < out.view_messages_sent,
            "all view traffic lost"
        );
    }

    #[test]
    fn crashed_nodes_age_out_of_views() {
        // After a 50% crash wave the gossiped overlay keeps the survivors
        // exchanging: fresh descriptors displace the dead, and epochs keep
        // completing on the partial views.
        let mut cfg = base_config();
        cfg.scenario.overlay = OverlaySpec::Newscast { c: 15 };
        cfg.scenario.failure = FailureModel::SuddenDeath {
            fraction: 0.5,
            at_cycle: 4,
        };
        cfg.duration = 60_000;
        cfg.node = node_config(10);
        let out = cfg.run(7);
        assert_eq!(out.final_alive, 32);
        let late_epochs = out
            .reports
            .iter()
            .flatten()
            .filter(|r| r.epoch >= 2)
            .count();
        assert!(late_epochs > 0, "survivors stopped completing epochs");
        // Self-healing: by the end of the run (~56 gossip cycles after the
        // wave) fresh descriptors have displaced most of the dead ones,
        // and views are still usefully full.
        let health = out.view_health.expect("gossiped membership");
        assert_eq!(health.views, 32);
        assert!(
            health.dead_entry_fraction < 0.2,
            "views failed to heal: {health:?}"
        );
        assert!(health.mean_size > 5.0, "views collapsed: {health:?}");
    }

    #[test]
    fn gossiped_membership_is_deterministic() {
        let mut cfg = base_config();
        cfg.scenario.overlay = OverlaySpec::Newscast { c: 15 };
        cfg.scenario.failure = FailureModel::Churn { per_cycle: 2 };
        cfg.scenario.comm = CommFailure::messages(0.1);
        let a = cfg.run(8);
        let b = cfg.run(8);
        assert_eq!(a.messages_sent, b.messages_sent);
        assert_eq!(a.view_messages_sent, b.view_messages_sent);
        assert_eq!(a.view_bytes_sent, b.view_bytes_sent);
        assert_eq!(a.view_messages_lost, b.view_messages_lost);
        assert_eq!(a.epoch_entries, b.epoch_entries);
        assert_eq!(a.epoch_estimates(0), b.epoch_estimates(0));
    }

    #[test]
    fn deterministic_under_crash_schedule() {
        let mut cfg = base_config();
        cfg.scenario.failure = FailureModel::ProportionalCrash { p_f: 0.02 };
        let a = cfg.run(9);
        let b = cfg.run(9);
        assert_eq!(a.messages_sent, b.messages_sent);
        assert_eq!(a.messages_lost, b.messages_lost);
        assert_eq!(a.epoch_entries, b.epoch_entries);
        assert_eq!(a.final_alive, b.final_alive);
        let ea: Vec<f64> = a.epoch_estimates(0);
        let eb: Vec<f64> = b.epoch_estimates(0);
        assert_eq!(ea, eb);
    }

    #[test]
    fn run_many_matches_sequential() {
        let cfg = base_config();
        let seeds = [1u64, 2, 3, 4, 5];
        let many = run_many(&cfg, &seeds);
        for (i, &seed) in seeds.iter().enumerate() {
            let solo = cfg.run(seed);
            assert_eq!(many[i].messages_sent, solo.messages_sent, "seed {seed}");
            assert_eq!(many[i].epoch_entries, solo.epoch_entries, "seed {seed}");
        }
    }

    #[test]
    fn event_ordering_is_time_then_seq() {
        let mk = |at, seq| Event {
            at,
            seq,
            kind: EventKind::Wake(0),
        };
        let mut heap = BinaryHeap::new();
        heap.push(mk(5, 1));
        heap.push(mk(3, 2));
        heap.push(mk(3, 1));
        heap.push(mk(7, 0));
        let order: Vec<(u64, u64)> = std::iter::from_fn(|| heap.pop())
            .map(|e| (e.at, e.seq))
            .collect();
        assert_eq!(order, [(3, 1), (3, 2), (5, 1), (7, 0)]);
    }

    #[test]
    #[should_panic(expected = "empty delay range")]
    fn empty_delay_rejected() {
        let mut cfg = base_config();
        cfg.delay = (10, 10);
        cfg.run(0);
    }

    #[test]
    fn registry_tracks_convergence_and_traffic() {
        let out = base_config().run(1);
        assert!(out.registry.counter_value("agg.exchanges") > 0);
        let rho = out
            .registry
            .gauge_value("epoch.variance_reduction_rho")
            .expect("rho gauge never published");
        // Observed per-cycle reduction should be in the ballpark of the
        // theory bound 1/(2√e) ≈ 0.3033 — certainly below 1 (progress)
        // and above 0 (the gauge guards against exact-zero variance).
        assert!(rho > 0.0 && rho < 1.0, "implausible rho {rho}");
        let theory = out.registry.gauge_value("epoch.rho_theory").unwrap();
        assert!((theory - 0.5 / std::f64::consts::E.sqrt()).abs() < 1e-12);
        assert!(out.registry.gauge_value("epoch.estimate_drift").is_some());
        assert_eq!(out.registry.gauge_value("sim.live_nodes"), Some(64.0));
    }

    #[test]
    fn tracing_captures_protocol_events_without_changing_the_run() {
        let mut cfg = base_config();
        cfg.scenario.overlay = OverlaySpec::Newscast { c: 15 };
        let plain = cfg.run(5);
        cfg.trace_capacity = 256;
        let traced = cfg.run(5);
        // Tracing is pure observation: the protocol run is identical.
        assert_eq!(plain.messages_sent, traced.messages_sent);
        assert_eq!(plain.epoch_entries, traced.epoch_entries);
        assert!(plain.traces.iter().all(Vec::is_empty));
        let events: usize = traced.traces.iter().map(Vec::len).sum();
        assert!(events > 0, "tracing enabled but no events captured");
        // Both planes show up: aggregation exchanges and view merges.
        let kinds: std::collections::HashSet<&'static str> = traced
            .traces
            .iter()
            .flatten()
            .map(|e| e.kind.as_str())
            .collect();
        assert!(kinds.contains("exchange_complete"), "kinds: {kinds:?}");
        assert!(kinds.contains("view_merge"), "kinds: {kinds:?}");
    }

    fn average_query(name: &str, default: f64) -> epidemic_query::QueryDescriptor {
        epidemic_query::QueryDescriptor::new(name, epidemic_aggregation::AggregateKind::Average)
            .with_gamma(5)
            .with_cycle_length(500)
            .with_default_value(default)
    }

    fn install_action(
        at: u64,
        node: u32,
        id: u64,
        descriptor: epidemic_query::QueryDescriptor,
    ) -> QueryAction {
        QueryAction {
            at,
            node,
            request: RpcRequest::Install { id, descriptor },
        }
    }

    #[test]
    fn catalog_gossip_installs_query_cluster_wide() {
        let mut cfg = base_config();
        cfg.query_script = vec![install_action(2_000, 0, 1, average_query("temp", 3.0))];
        let out = cfg.run(1);
        assert_eq!(out.query_responses.len(), 1);
        assert_eq!(out.query_responses[0].status, RpcStatus::Ok);
        // One install at one node; the catalog gossip must carry it to
        // every other node, and all 64 replicas settle on the default
        // contribution (an exact fixed point of the averaging).
        let values = out.query_values("temp");
        assert_eq!(values.len(), 64, "query did not reach every node");
        for v in values {
            assert!((v - 3.0).abs() < 1e-6, "estimate {v}");
        }
        assert!(out.query_messages_sent > 0, "no query traffic");
        assert!(out.query_bytes_sent > 0);
        // Per-query telemetry landed in the shared namespace.
        assert_eq!(out.registry.gauge_value("query.installed"), Some(1.0));
        assert!(out
            .registry
            .render_prometheus()
            .contains("epoch_estimate_drift{query=\"temp\"}"));
    }

    #[test]
    fn query_script_leaves_baseline_run_untouched() {
        // Zero perturbation: the query plane draws from its own stream,
        // so running a query changes nothing in the aggregation or
        // membership planes of the same seed.
        let plain = base_config().run(1);
        let mut cfg = base_config();
        cfg.query_script = vec![install_action(1_000, 5, 9, average_query("side", 1.0))];
        let queried = cfg.run(1);
        assert_eq!(plain.messages_sent, queried.messages_sent);
        assert_eq!(plain.view_messages_sent, queried.view_messages_sent);
        assert_eq!(plain.epoch_entries, queried.epoch_entries);
        assert_eq!(plain.epoch_estimates(0), queried.epoch_estimates(0));
        assert_eq!(plain.query_messages_sent, 0);
        assert!(queried.query_messages_sent > 0);
    }

    #[test]
    fn admission_limit_rejects_excess_submits() {
        let mut cfg = base_config();
        let descriptor = average_query("load", 1.0)
            .with_admission(epidemic_query::AdmissionConfig::limited(1, 2));
        let mut script = vec![install_action(1_000, 0, 0, descriptor)];
        for k in 0..6u64 {
            script.push(QueryAction {
                at: 1_100 + k,
                node: 0,
                request: RpcRequest::Submit {
                    id: 1 + k,
                    name: "load".into(),
                    value: 9.0,
                },
            });
        }
        cfg.query_script = script;
        let out = cfg.run(2);
        let ok = out
            .query_responses
            .iter()
            .filter(|r| r.status == RpcStatus::Ok)
            .count();
        let rejected = out
            .query_responses
            .iter()
            .filter(|r| r.status == RpcStatus::AdmissionRejected)
            .count();
        // Burst of 2 grants two back-to-back submits (plus the install);
        // the rest are rejected — and surfaced, never swallowed.
        assert_eq!(ok, 3, "responses: {:?}", out.query_responses);
        assert_eq!(rejected, 4);
        assert!(out
            .registry
            .render_prometheus()
            .contains("query_admission_rejects{query=\"load\"} 4"));
    }

    #[test]
    fn removed_query_vanishes_cluster_wide() {
        let mut cfg = base_config();
        cfg.query_script = vec![
            install_action(2_000, 0, 1, average_query("tmp", 2.0)),
            // Removal via a *different* node: any replica may serve it
            // once the catalog has spread.
            QueryAction {
                at: 12_000,
                node: 42,
                request: RpcRequest::Remove {
                    id: 2,
                    name: "tmp".into(),
                },
            },
        ];
        let out = cfg.run(3);
        assert!(out
            .query_responses
            .iter()
            .all(|r| r.status == RpcStatus::Ok));
        assert!(
            out.query_values("tmp").is_empty(),
            "tombstone failed to spread"
        );
        assert_eq!(out.registry.gauge_value("query.installed"), Some(0.0));
    }

    #[test]
    fn query_plane_is_deterministic_under_loss() {
        let mut cfg = base_config();
        cfg.scenario.comm = CommFailure::messages(0.1);
        cfg.query_script = vec![
            install_action(2_000, 0, 1, average_query("det", 4.0)),
            QueryAction {
                at: 8_000,
                node: 7,
                request: RpcRequest::Submit {
                    id: 2,
                    name: "det".into(),
                    value: 10.0,
                },
            },
            QueryAction {
                at: 30_000,
                node: 33,
                request: RpcRequest::Read {
                    id: 3,
                    name: "det".into(),
                },
            },
        ];
        let a = cfg.run(5);
        let b = cfg.run(5);
        assert_eq!(a.query_messages_sent, b.query_messages_sent);
        assert_eq!(a.query_messages_lost, b.query_messages_lost);
        assert_eq!(a.query_bytes_sent, b.query_bytes_sent);
        assert_eq!(a.query_responses, b.query_responses);
        assert_eq!(a.query_estimates, b.query_estimates);
        assert_eq!(a.messages_sent, b.messages_sent);
        assert!(a.query_messages_lost > 0, "loss never hit query traffic");
        // The mid-run read answered from node 33 with a real estimate.
        let read = &a.query_responses[2];
        assert_eq!(read.status, RpcStatus::Ok);
        assert!(read.estimate > 4.0 - 1.0, "read estimate {}", read.estimate);
    }

    #[test]
    fn snapshot_sink_writes_prometheus_text() {
        let path =
            std::env::temp_dir().join(format!("epidemic-sim-snapshot-{}.prom", std::process::id()));
        let mut cfg = base_config();
        cfg.snapshot = Some(SnapshotSpec {
            path: path.clone(),
            every_ticks: 10_000,
        });
        cfg.run(1);
        let text = std::fs::read_to_string(&path).expect("snapshot file written");
        let _ = std::fs::remove_file(&path);
        assert!(text.contains("agg_exchanges"), "snapshot:\n{text}");
        assert!(text.contains("epoch_variance_reduction_rho"));
    }
}
