//! Event-driven engine.
//!
//! The cycle model of [`crate::network`] abstracts away everything the
//! *practical* protocol of Section 4 exists to handle: message delay,
//! clock drift, exchange timeouts, and epoch synchronization. This engine
//! simulates those effects faithfully by driving the sans-io
//! [`GossipNode`] state machine with a timestamped event queue:
//!
//! * every node runs on its own skewed clock (`local = global × drift_i`);
//! * messages arrive after a uniformly random delay, or never (loss);
//! * nodes are woken exactly at their next self-reported deadline.
//!
//! The headline measurement is the *epoch entry spread* `T_j` (Section
//! 4.3): the global-time window within which all live nodes enter epoch
//! `j`. With epidemic epoch synchronization the spread stays bounded by a
//! few message delays; without it, clock drift widens it without bound —
//! the ablation `repro ablation-sync` demonstrates exactly this.

use epidemic_aggregation::node::GossipNode;
use epidemic_aggregation::{EpochReport, Message, NodeConfig};
use epidemic_common::rng::Xoshiro256;
use epidemic_common::NodeId;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Configuration of an event-driven simulation.
#[derive(Debug, Clone)]
pub struct EventConfig {
    /// Number of founding nodes.
    pub n: usize,
    /// Protocol configuration shared by all nodes.
    pub node: NodeConfig,
    /// Uniform message delay range `[min, max)` in ticks.
    pub delay: (u64, u64),
    /// Per-message loss probability.
    pub message_loss: f64,
    /// Maximum relative clock drift: node clocks run at a rate drawn
    /// uniformly from `[1 − drift, 1 + drift]`.
    pub drift: f64,
    /// Global simulation duration in ticks.
    pub duration: u64,
    /// Master seed.
    pub seed: u64,
}

/// Result of an event-driven simulation.
#[derive(Debug)]
pub struct EventOutcome {
    /// Per-node epoch reports, indexed by node.
    pub reports: Vec<Vec<EpochReport>>,
    /// For each observed epoch: `(epoch, first_entry, last_entry)` in
    /// global ticks over nodes that entered it.
    pub epoch_entries: Vec<(u64, u64, u64)>,
    /// Messages transmitted.
    pub messages_sent: usize,
    /// Messages dropped by the loss model.
    pub messages_lost: usize,
}

impl EventOutcome {
    /// Spread `T_j = last − first` of epoch `j`'s entry window, if
    /// observed.
    pub fn epoch_spread(&self, epoch: u64) -> Option<u64> {
        self.epoch_entries
            .iter()
            .find(|&&(e, _, _)| e == epoch)
            .map(|&(_, first, last)| last - first)
    }
}

#[derive(Debug)]
enum EventKind {
    Wake(usize),
    Deliver(usize, Message),
}

/// Runs an event-driven simulation of `config.n` founder nodes on an
/// implicit complete overlay.
///
/// Uniform local values `i as f64` are assigned (the aggregate estimates
/// then converge to `(n−1)/2`, which the tests verify).
pub fn run(config: &EventConfig) -> EventOutcome {
    let mut rng = Xoshiro256::seed_from_u64(config.seed);
    let n = config.n;
    assert!(n >= 2, "event simulation needs at least two nodes");
    assert!(config.delay.1 > config.delay.0, "empty delay range");

    let mut nodes: Vec<GossipNode> = (0..n)
        .map(|i| {
            GossipNode::founder(
                NodeId::new(i as u64),
                config.node.clone(),
                i as f64,
                config.seed ^ 0xE7E7,
            )
        })
        .collect();
    let drifts: Vec<f64> = (0..n)
        .map(|_| 1.0 + config.drift * (2.0 * rng.next_f64() - 1.0))
        .collect();

    // Event queue ordered by (global time, sequence number).
    let mut queue: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
    let mut payloads: HashMap<u64, EventKind> = HashMap::new();
    let mut seq: u64 = 0;
    let push = |queue: &mut BinaryHeap<Reverse<(u64, u64)>>,
                payloads: &mut HashMap<u64, EventKind>,
                seq: &mut u64,
                at: u64,
                kind: EventKind| {
        *seq += 1;
        payloads.insert(*seq, kind);
        queue.push(Reverse((at, *seq)));
    };

    let to_local = |global: u64, node: usize| -> u64 { (global as f64 * drifts[node]) as u64 };
    let to_global =
        |local: u64, node: usize| -> u64 { (local as f64 / drifts[node]).ceil() as u64 };

    for (i, node) in nodes.iter().enumerate() {
        let at = to_global(node.next_deadline(), i);
        push(&mut queue, &mut payloads, &mut seq, at, EventKind::Wake(i));
    }

    let mut messages_sent = 0usize;
    let mut messages_lost = 0usize;
    let mut epoch_seen: Vec<u64> = nodes.iter().map(GossipNode::epoch).collect();
    let mut entries: HashMap<u64, (u64, u64)> = HashMap::new();
    entries.insert(0, (0, 0));

    while let Some(Reverse((at, id))) = queue.pop() {
        if at > config.duration {
            break;
        }
        let kind = payloads.remove(&id).expect("event payload");
        let (node_idx, outbound) = match kind {
            EventKind::Wake(i) => {
                let local_now = to_local(at, i);
                // GETNEIGHBOR() over the implicit complete graph.
                let peer = {
                    let raw = rng.index(n - 1);
                    let p = if raw >= i { raw + 1 } else { raw };
                    Some(NodeId::new(p as u64))
                };
                let out = nodes[i].poll(local_now, peer);
                (i, out)
            }
            EventKind::Deliver(i, msg) => {
                let local_now = to_local(at, i);
                let out = nodes[i].handle(&msg, local_now);
                (i, out)
            }
        };
        if let Some(out) = outbound {
            messages_sent += 1;
            if config.message_loss > 0.0 && rng.next_bool(config.message_loss) {
                messages_lost += 1;
            } else {
                let delay = rng.range_u64(config.delay.0, config.delay.1);
                let to = out.to.index();
                push(
                    &mut queue,
                    &mut payloads,
                    &mut seq,
                    at + delay,
                    EventKind::Deliver(to, out.message),
                );
            }
        }
        // Track epoch transitions for the synchronization measurement.
        let epoch_now = nodes[node_idx].epoch();
        if epoch_now != epoch_seen[node_idx] {
            epoch_seen[node_idx] = epoch_now;
            let entry = entries.entry(epoch_now).or_insert((at, at));
            entry.0 = entry.0.min(at);
            entry.1 = entry.1.max(at);
        }
        // Reschedule this node at its next deadline.
        let next = to_global(nodes[node_idx].next_deadline(), node_idx);
        push(
            &mut queue,
            &mut payloads,
            &mut seq,
            next.max(at + 1),
            EventKind::Wake(node_idx),
        );
    }

    let mut epoch_entries: Vec<(u64, u64, u64)> = entries
        .into_iter()
        .map(|(e, (first, last))| (e, first, last))
        .collect();
    epoch_entries.sort_unstable();
    EventOutcome {
        reports: nodes.iter_mut().map(GossipNode::take_reports).collect(),
        epoch_entries,
        messages_sent,
        messages_lost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epidemic_aggregation::InstanceSpec;

    fn node_config(gamma: u32) -> NodeConfig {
        NodeConfig::builder()
            .gamma(gamma)
            .cycle_length(1_000)
            .timeout(200)
            .instance(InstanceSpec::AVERAGE)
            .build()
            .unwrap()
    }

    fn base_config() -> EventConfig {
        EventConfig {
            n: 64,
            node: node_config(15),
            delay: (10, 50),
            message_loss: 0.0,
            drift: 0.0,
            duration: 40_000,
            seed: 1,
        }
    }

    #[test]
    fn epochs_complete_and_converge() {
        let out = run(&base_config());
        let truth = 63.0 / 2.0;
        let mut reported = 0;
        for reports in &out.reports {
            for r in reports {
                reported += 1;
                let v = r.scalar(0).unwrap();
                assert!((v - truth).abs() < 1.0, "epoch estimate {v} vs {truth}");
            }
        }
        assert!(reported >= 64, "only {reported} epoch reports");
    }

    #[test]
    fn message_loss_only_slows_down() {
        let mut cfg = base_config();
        cfg.message_loss = 0.2;
        cfg.duration = 60_000;
        cfg.node = node_config(30);
        let out = run(&cfg);
        assert!(out.messages_lost > 0);
        let truth = 63.0 / 2.0;
        let mut count = 0;
        for reports in &out.reports {
            for r in reports {
                // Loss perturbs the mass slightly; estimates stay close.
                let v = r.scalar(0).unwrap();
                assert!((v - truth).abs() < truth * 0.5, "estimate {v}");
                count += 1;
            }
        }
        assert!(count > 0);
    }

    #[test]
    fn epoch_sync_bounds_spread_under_drift() {
        let mut cfg = base_config();
        cfg.drift = 0.05; // ±5% clock drift
        cfg.duration = 120_000;
        let out = run(&cfg);
        // Find a mid-simulation epoch and check its entry spread is well
        // below one epoch length (gamma * cycle = 15_000 ticks).
        let spread = out.epoch_spread(3).expect("epoch 3 never entered");
        assert!(
            spread < 15_000 / 2,
            "epoch spread {spread} not bounded by synchronization"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run(&base_config());
        let b = run(&base_config());
        assert_eq!(a.messages_sent, b.messages_sent);
        assert_eq!(a.epoch_entries, b.epoch_entries);
    }

    #[test]
    fn outcome_spread_accessor() {
        let out = run(&base_config());
        assert!(out.epoch_spread(0).is_some());
        assert_eq!(out.epoch_spread(9_999), None);
    }
}
