//! One-call experiment driver for the cycle-driven engine.
//!
//! [`ExperimentConfig`] is a thin wrapper over the engine-independent
//! [`Scenario`]: it adds the two cycle-engine-specific choices — a cycle
//! budget (the epoch length γ) and which aggregate to compute — in the
//! style of the paper's Section 7 experiments. [`ExperimentConfig::run`]
//! executes it deterministically from a seed and returns per-cycle
//! statistics plus final per-node estimates; [`run_many`] fans repetitions
//! out over OS threads.

use crate::network::{CycleOptions, CycleReport, Network};
use crate::scenario::Scenario;
use epidemic_aggregation::rule::Rule;
use epidemic_common::rng::Xoshiro256;
use epidemic_common::sample::{CompleteSampler, NeighborSampling};
use epidemic_common::stats::Summary;
use epidemic_newscast::Overlay;
use epidemic_topology::Graph;

pub use crate::scenario::{OverlaySpec, ValueInit};

/// Which aggregate the experiment exercises.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AggregateSetup {
    /// Scalar averaging over the initial values.
    Average,
    /// COUNT with a single leader, run as a scalar peak instance
    /// (leader = 1, others = 0; the size estimate is `1/value`).
    CountPeak,
    /// COUNT with `leaders` concurrent instances in an instance map; the
    /// reported estimate is the per-node trimmed mean (Section 7.3).
    CountMap {
        /// Number of concurrent instances `t`.
        leaders: usize,
    },
}

/// Complete description of a single-epoch cycle-driven experiment: a
/// [`Scenario`] plus the cycle budget and aggregate under test.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentConfig {
    /// Conditions shared with the event-driven engine.
    pub scenario: Scenario,
    /// Number of cycles to run (the epoch length γ).
    pub cycles: u32,
    /// Aggregate under test.
    pub aggregate: AggregateSetup,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            scenario: Scenario::default(),
            cycles: 30,
            aggregate: AggregateSetup::Average,
        }
    }
}

/// Everything measured during one experiment run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Estimate variance per cycle (`variance[0]` is the initial state,
    /// `variance[k]` after cycle `k`), over live participating nodes.
    pub variance: Vec<f64>,
    /// Estimate mean per cycle (µ_i of Eq. (1)).
    pub mean: Vec<f64>,
    /// Minimum estimate per cycle.
    pub min: Vec<f64>,
    /// Maximum estimate per cycle.
    pub max: Vec<f64>,
    /// Live node count per cycle.
    pub alive: Vec<usize>,
    /// Communication report per cycle.
    pub reports: Vec<CycleReport>,
    /// Final per-node aggregate estimates, interpreted per
    /// [`AggregateSetup`]: raw averages, `1/value` size estimates, or
    /// trimmed multi-instance size estimates.
    pub final_estimates: Vec<f64>,
}

impl RunOutcome {
    /// Average per-cycle convergence factor over the first `k` cycles:
    /// `(σ²_k / σ²_0)^(1/k)` — the quantity plotted in Figures 3(a), 4
    /// and 7(a).
    ///
    /// # Panics
    ///
    /// Panics if fewer than `k` cycles were recorded or `k == 0`.
    pub fn convergence_factor(&self, k: u32) -> f64 {
        assert!(k > 0, "need at least one cycle");
        let k = k as usize;
        assert!(
            self.variance.len() > k,
            "only {} cycles recorded",
            self.variance.len() - 1
        );
        (self.variance[k] / self.variance[0]).powf(1.0 / k as f64)
    }

    /// Normalized variance series `σ²_i / σ²_0` (Figure 3(b)).
    pub fn variance_reduction(&self) -> Vec<f64> {
        let v0 = self.variance[0];
        self.variance.iter().map(|&v| v / v0).collect()
    }

    /// Mean of the final per-node estimates (one experiment dot in
    /// Figures 6 and 8).
    pub fn mean_final_estimate(&self) -> f64 {
        epidemic_common::stats::mean(&self.final_estimates)
    }

    /// Summary of the final per-node estimates.
    pub fn final_summary(&self) -> Summary {
        let stats: epidemic_common::stats::OnlineStats =
            self.final_estimates.iter().copied().collect();
        stats.summary()
    }
}

enum OverlayState {
    Complete(usize),
    Static(Graph),
    Newscast(Overlay),
}

impl OverlayState {
    fn sampler(&self) -> &dyn NeighborSampling {
        match self {
            OverlayState::Complete(_) => panic!("complete sampler materialized on demand"),
            OverlayState::Static(g) => g,
            OverlayState::Newscast(o) => o,
        }
    }
}

/// Uniform sampling over the current live population — the idealized
/// fully connected overlay of the paper, whose membership adapts to
/// crashes instantly (a dead node is in nobody's neighbor set). Static
/// graphs and NEWSCAST instead model the realistic behaviour: dead
/// neighbors are discovered by timeout.
///
/// `live` must be sorted ascending (it is built by filtering an index
/// range in order).
pub(crate) struct LiveSampler<'a> {
    pub(crate) live: &'a [u32],
    pub(crate) slots: usize,
}

impl NeighborSampling for LiveSampler<'_> {
    fn node_count(&self) -> usize {
        self.slots
    }

    fn sample_neighbor(&self, node: usize, rng: &mut Xoshiro256) -> Option<usize> {
        // Draw from the live set minus the initiator by skipping over its
        // position — no rejection loop, and `None` (rather than a spin)
        // when the initiator is the only live node.
        let me = self.live.binary_search(&(node as u32)).ok();
        let idx = epidemic_common::sample::index_excluding(rng, self.live.len(), me)?;
        Some(self.live[idx] as usize)
    }
}

/// Picks a uniformly random live overlay member to introduce a joiner, or
/// `None` when nobody is alive (the join is then impossible and must be
/// skipped instead of spinning).
pub(crate) fn random_live_introducer(overlay: &Overlay, rng: &mut Xoshiro256) -> Option<usize> {
    if overlay.alive_count() == 0 {
        return None;
    }
    // Rejection is fast while a reasonable fraction of slots is live.
    for _ in 0..64 {
        let cand = rng.index(overlay.slot_count());
        if overlay.is_alive(cand) {
            return Some(cand);
        }
    }
    // Mostly-dead overlay: fall back to an explicit live list.
    let live: Vec<usize> = (0..overlay.slot_count())
        .filter(|&i| overlay.is_alive(i))
        .collect();
    rng.choose(&live).copied()
}

impl ExperimentConfig {
    /// Runs the experiment deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (e.g. churn over a
    /// static overlay, `n < 2`, or an invalid topology parameter).
    pub fn run(&self, seed: u64) -> RunOutcome {
        let scenario = &self.scenario;
        scenario.validate();
        let n = scenario.n;
        let mut rng = Xoshiro256::seed_from_u64(seed);

        // --- Overlay -----------------------------------------------------
        let mut clock: u32 = 0;
        let mut overlay = match scenario.overlay {
            OverlaySpec::Complete => OverlayState::Complete(n),
            OverlaySpec::Static(kind) => OverlayState::Static(
                kind.generate(n, &mut rng)
                    .expect("invalid topology parameters"),
            ),
            OverlaySpec::Newscast { c } => {
                let mut o = Overlay::random_init(n, c, &mut rng);
                for _ in 0..scenario.newscast_warmup {
                    clock += 1;
                    o.run_cycle(clock, &mut rng);
                }
                OverlayState::Newscast(o)
            }
        };

        // --- Aggregation state -------------------------------------------
        let mut net = Network::new(n);
        let field = match self.aggregate {
            AggregateSetup::Average => {
                let values = scenario.values.materialize(n, &mut rng);
                net.add_scalar_field(Rule::Average, |i| values[i])
            }
            AggregateSetup::CountPeak => {
                let leader = rng.index(n);
                net.add_scalar_field(Rule::Average, |i| if i == leader { 1.0 } else { 0.0 })
            }
            AggregateSetup::CountMap { leaders } => {
                let chosen = rng.sample_distinct(n, leaders);
                net.add_map_field(&chosen)
            }
        };
        let opts = CycleOptions {
            link_failure: scenario.comm.link_failure,
            message_loss: scenario.comm.message_loss,
        };

        let cap = self.cycles as usize + 1;
        let mut outcome = RunOutcome {
            variance: Vec::with_capacity(cap),
            mean: Vec::with_capacity(cap),
            min: Vec::with_capacity(cap),
            max: Vec::with_capacity(cap),
            alive: Vec::with_capacity(cap),
            reports: Vec::with_capacity(self.cycles as usize),
            final_estimates: Vec::new(),
        };
        record_stats(&net, field, self.aggregate, &mut outcome);

        // --- Cycle loop ---------------------------------------------------
        for cycle in 0..self.cycles {
            // Failures strike before the cycle (worst case, Section 6.1).
            let crashes = scenario.failure.crashes_at(cycle, net.alive_count());
            if crashes > 0 {
                let alive_idx: Vec<u32> = (0..net.slot_count() as u32)
                    .filter(|&i| net.is_alive(i as usize))
                    .collect();
                for pick in rng.sample_distinct(alive_idx.len(), crashes.min(alive_idx.len())) {
                    let victim = alive_idx[pick] as usize;
                    net.crash(victim);
                    if let OverlayState::Newscast(o) = &mut overlay {
                        o.crash(victim);
                    }
                }
            }
            let joins = scenario.failure.joins_at(cycle);
            for _ in 0..joins {
                if let OverlayState::Newscast(o) = &mut overlay {
                    // Bootstrap through a random live member; without one
                    // the join is impossible this cycle.
                    let Some(introducer) = random_live_introducer(o, &mut rng) else {
                        break;
                    };
                    let idx = net.add_node();
                    let joined = o.join_via(introducer, clock);
                    debug_assert_eq!(joined, idx);
                }
            }

            clock += 1;
            // Membership gossip first, then aggregation over fresh views.
            if let OverlayState::Newscast(o) = &mut overlay {
                o.run_cycle(clock, &mut rng);
            }
            let report = match &overlay {
                OverlayState::Complete(n) => {
                    if matches!(scenario.failure, crate::failure::FailureModel::None) {
                        let sampler = CompleteSampler::new(*n);
                        net.run_cycle(&sampler, opts, &mut rng)
                    } else {
                        // Perfect membership: sample among live nodes only.
                        let live: Vec<u32> = (0..net.slot_count() as u32)
                            .filter(|&i| net.is_alive(i as usize))
                            .collect();
                        let sampler = LiveSampler {
                            live: &live,
                            slots: net.slot_count(),
                        };
                        net.run_cycle(&sampler, opts, &mut rng)
                    }
                }
                _ => net.run_cycle(overlay.sampler(), opts, &mut rng),
            };
            outcome.reports.push(report);
            record_stats(&net, field, self.aggregate, &mut outcome);
        }

        outcome.final_estimates = match self.aggregate {
            AggregateSetup::Average => net.scalar_values(field),
            AggregateSetup::CountPeak => net
                .scalar_values(field)
                .into_iter()
                .map(|v| if v > 0.0 { 1.0 / v } else { f64::INFINITY })
                .collect(),
            AggregateSetup::CountMap { .. } => net.count_estimates(field),
        };
        outcome
    }
}

fn record_stats(
    net: &Network,
    field: crate::network::FieldId,
    aggregate: AggregateSetup,
    outcome: &mut RunOutcome,
) {
    let summary = match aggregate {
        AggregateSetup::Average | AggregateSetup::CountPeak => net.scalar_summary(field),
        AggregateSetup::CountMap { .. } => {
            // Track the per-node total instance mass: its variance decays
            // at the same rate as the underlying averaging.
            let stats: epidemic_common::stats::OnlineStats = (0..net.slot_count())
                .filter(|&i| net.is_alive(i) && net.is_participating(i))
                .map(|i| net.map_value(field, i).total())
                .collect();
            stats.summary()
        }
    };
    outcome.variance.push(summary.variance);
    outcome.mean.push(summary.mean);
    outcome.min.push(summary.min);
    outcome.max.push(summary.max);
    outcome.alive.push(net.alive_count());
}

/// Runs `seeds.len()` independent repetitions across OS threads, returning
/// outcomes in seed order.
pub fn run_many(config: &ExperimentConfig, seeds: &[u64]) -> Vec<RunOutcome> {
    crate::pool::parallel_map_seeds(seeds, |seed| config.run(seed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failure::{CommFailure, FailureModel};
    use crate::scenario::Scenario;
    use epidemic_aggregation::theory::RHO_PUSH_PULL;
    use epidemic_topology::TopologyKind;

    fn base(n: usize) -> ExperimentConfig {
        ExperimentConfig {
            scenario: Scenario {
                n,
                values: ValueInit::Peak { total: n as f64 },
                ..Scenario::default()
            },
            ..ExperimentConfig::default()
        }
    }

    fn with_overlay(n: usize, overlay: OverlaySpec) -> ExperimentConfig {
        let mut config = base(n);
        config.scenario.overlay = overlay;
        config
    }

    #[test]
    fn average_converges_on_complete_graph() {
        let cfg = base(2000);
        let out = cfg.run(1);
        assert_eq!(out.variance.len(), 31);
        assert!((out.mean[0] - 1.0).abs() < 1e-9);
        assert!((out.mean[30] - 1.0).abs() < 1e-9, "mean drifted");
        let factor = out.convergence_factor(20);
        assert!((factor - RHO_PUSH_PULL).abs() < 0.05, "factor {factor}");
    }

    #[test]
    fn average_converges_on_newscast() {
        let cfg = with_overlay(2000, OverlaySpec::Newscast { c: 30 });
        let out = cfg.run(2);
        let factor = out.convergence_factor(20);
        assert!(factor < 0.45, "newscast convergence factor {factor}");
    }

    #[test]
    fn average_on_static_random_topology() {
        let cfg = with_overlay(2000, OverlaySpec::Static(TopologyKind::Random { k: 20 }));
        let out = cfg.run(3);
        let factor = out.convergence_factor(20);
        assert!(factor < 0.42, "random-20 convergence factor {factor}");
    }

    #[test]
    fn lattice_is_much_slower() {
        let fast = with_overlay(2000, OverlaySpec::Static(TopologyKind::Random { k: 20 }))
            .run(4)
            .convergence_factor(20);
        let slow = with_overlay(
            2000,
            OverlaySpec::Static(TopologyKind::RingLattice { k: 20 }),
        )
        .run(4)
        .convergence_factor(20);
        assert!(
            slow > fast + 0.2,
            "lattice should converge much slower: lattice {slow} vs random {fast}"
        );
    }

    #[test]
    fn determinism() {
        let cfg = base(500);
        let a = cfg.run(42);
        let b = cfg.run(42);
        assert_eq!(a.variance, b.variance);
        assert_eq!(a.final_estimates, b.final_estimates);
    }

    #[test]
    fn count_peak_estimates_network_size() {
        let mut cfg = with_overlay(1000, OverlaySpec::Newscast { c: 30 });
        cfg.aggregate = AggregateSetup::CountPeak;
        let out = cfg.run(5);
        let est = out.mean_final_estimate();
        assert!((est - 1000.0).abs() < 20.0, "size estimate {est}");
    }

    #[test]
    fn count_map_estimates_network_size() {
        let mut cfg = with_overlay(1000, OverlaySpec::Newscast { c: 30 });
        cfg.aggregate = AggregateSetup::CountMap { leaders: 10 };
        let out = cfg.run(6);
        assert_eq!(out.final_estimates.len(), 1000);
        let est = out.mean_final_estimate();
        assert!((est - 1000.0).abs() < 25.0, "size estimate {est}");
    }

    #[test]
    fn sudden_death_late_in_epoch_is_harmless() {
        let mut cfg = with_overlay(1000, OverlaySpec::Newscast { c: 30 });
        cfg.aggregate = AggregateSetup::CountPeak;
        cfg.scenario.failure = FailureModel::SuddenDeath {
            fraction: 0.5,
            at_cycle: 25,
        };
        let out = cfg.run(7);
        assert_eq!(*out.alive.last().unwrap(), 500);
        let est = out.mean_final_estimate();
        // Crash at cycle 25: variance is tiny, damage negligible; the
        // protocol reports the size at epoch start.
        assert!((est - 1000.0).abs() < 50.0, "estimate {est}");
    }

    #[test]
    fn churn_keeps_size_constant() {
        let mut cfg = with_overlay(1000, OverlaySpec::Newscast { c: 30 });
        cfg.aggregate = AggregateSetup::CountPeak;
        cfg.scenario.failure = FailureModel::Churn { per_cycle: 20 };
        let out = cfg.run(8);
        for &alive in &out.alive {
            assert_eq!(alive, 1000);
        }
        // Estimates remain in a sane band despite 60% substitution.
        let est = out.mean_final_estimate();
        assert!(est > 500.0 && est < 2000.0, "estimate {est}");
    }

    #[test]
    #[should_panic(expected = "churn requires a NEWSCAST overlay")]
    fn churn_rejected_on_static_overlay() {
        let mut cfg = base(100);
        cfg.scenario.failure = FailureModel::Churn { per_cycle: 5 };
        cfg.run(9);
    }

    #[test]
    fn link_failure_slows_convergence() {
        let clean = base(2000).run(10).convergence_factor(20);
        let mut lossy_cfg = base(2000);
        lossy_cfg.scenario.comm = CommFailure::links(0.6);
        let lossy = lossy_cfg.run(10).convergence_factor(20);
        assert!(
            lossy > clean + 0.15,
            "link failure too cheap: {clean} -> {lossy}"
        );
        // But the mean is unbiased.
        let out = lossy_cfg.run(11);
        assert!((out.mean[30] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn run_many_matches_sequential_and_is_ordered() {
        let cfg = base(300);
        let seeds = [1u64, 2, 3, 4, 5, 6, 7];
        let parallel = run_many(&cfg, &seeds);
        for (i, &seed) in seeds.iter().enumerate() {
            let solo = cfg.run(seed);
            assert_eq!(parallel[i].variance, solo.variance, "seed {seed}");
        }
    }

    #[test]
    fn variance_reduction_is_normalized() {
        let out = base(500).run(12);
        let series = out.variance_reduction();
        assert_eq!(series[0], 1.0);
        assert!(series[20] < 1e-8);
    }

    #[test]
    #[should_panic(expected = "at least two nodes")]
    fn tiny_network_rejected() {
        base(1).run(0);
    }

    #[test]
    fn live_sampler_returns_none_when_alone() {
        let mut rng = Xoshiro256::seed_from_u64(1);
        let live = [3u32];
        let sampler = LiveSampler {
            live: &live,
            slots: 10,
        };
        assert_eq!(sampler.sample_neighbor(3, &mut rng), None);
        // A dead initiator among one live node still has a peer.
        assert_eq!(sampler.sample_neighbor(4, &mut rng), Some(3));
    }

    #[test]
    fn live_sampler_skips_initiator_uniformly() {
        let mut rng = Xoshiro256::seed_from_u64(2);
        let live = [1u32, 4, 7, 9];
        let sampler = LiveSampler {
            live: &live,
            slots: 10,
        };
        let mut counts = std::collections::HashMap::new();
        for _ in 0..40_000 {
            let peer = sampler.sample_neighbor(4, &mut rng).unwrap();
            *counts.entry(peer).or_insert(0usize) += 1;
        }
        assert!(!counts.contains_key(&4));
        for &p in &[1usize, 7, 9] {
            let c = counts[&p] as i64;
            assert!((c - 13_333).abs() < 1_200, "peer {p} count {c}");
        }
    }

    #[test]
    fn introducer_none_when_all_dead() {
        let mut rng = Xoshiro256::seed_from_u64(3);
        let mut overlay = Overlay::random_init(10, 3, &mut rng);
        for i in 0..10 {
            overlay.crash(i);
        }
        assert_eq!(random_live_introducer(&overlay, &mut rng), None);
    }

    #[test]
    fn introducer_found_in_mostly_dead_overlay() {
        let mut rng = Xoshiro256::seed_from_u64(4);
        let mut overlay = Overlay::random_init(200, 3, &mut rng);
        for i in 0..199 {
            overlay.crash(i);
        }
        // Only node 199 is alive; both the rejection and fallback paths
        // must find it.
        for _ in 0..10 {
            assert_eq!(random_live_introducer(&overlay, &mut rng), Some(199));
        }
    }
}
