//! One-call experiment driver.
//!
//! [`ExperimentConfig`] describes a complete single-epoch experiment in the
//! style of the paper's Section 7: an overlay, an initial value
//! distribution, an aggregate, failure models, and a cycle budget.
//! [`ExperimentConfig::run`] executes it deterministically from a seed and
//! returns per-cycle statistics plus final per-node estimates;
//! [`run_many`] fans repetitions out over OS threads.

use crate::failure::{CommFailure, FailureModel};
use crate::network::{CycleOptions, CycleReport, Network};
use epidemic_aggregation::rule::Rule;
use epidemic_common::rng::Xoshiro256;
use epidemic_common::stats::Summary;
use epidemic_newscast::Overlay;
use epidemic_topology::{CompleteSampler, Graph, NeighborSampling, TopologyKind};

/// Which overlay the aggregation runs over.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OverlaySpec {
    /// Implicit complete graph.
    Complete,
    /// A static topology generated once at experiment start.
    Static(TopologyKind),
    /// A NEWSCAST overlay with view size `c`, gossiping membership in
    /// every cycle alongside the aggregation.
    Newscast {
        /// View size (the paper uses `c = 30`).
        c: usize,
    },
}

/// Initial distribution of local values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ValueInit {
    /// One uniformly chosen node holds `total`, all others hold zero — the
    /// paper's *peak* distribution, the worst case for robustness.
    Peak {
        /// Value held by the single peak node.
        total: f64,
    },
    /// Independent uniform values in `[lo, hi)`.
    Uniform {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// Every node holds the same constant.
    Constant(f64),
    /// Node `i` holds `i as f64` (deterministic, handy in tests).
    Linear,
}

impl ValueInit {
    fn materialize(self, n: usize, rng: &mut Xoshiro256) -> Vec<f64> {
        match self {
            ValueInit::Peak { total } => {
                let mut v = vec![0.0; n];
                v[rng.index(n)] = total;
                v
            }
            ValueInit::Uniform { lo, hi } => {
                (0..n).map(|_| lo + rng.next_f64() * (hi - lo)).collect()
            }
            ValueInit::Constant(c) => vec![c; n],
            ValueInit::Linear => (0..n).map(|i| i as f64).collect(),
        }
    }
}

/// Which aggregate the experiment exercises.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AggregateSetup {
    /// Scalar averaging over the initial values.
    Average,
    /// COUNT with a single leader, run as a scalar peak instance
    /// (leader = 1, others = 0; the size estimate is `1/value`).
    CountPeak,
    /// COUNT with `leaders` concurrent instances in an instance map; the
    /// reported estimate is the per-node trimmed mean (Section 7.3).
    CountMap {
        /// Number of concurrent instances `t`.
        leaders: usize,
    },
}

/// Complete description of a single-epoch experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentConfig {
    /// Initial network size.
    pub n: usize,
    /// Overlay specification.
    pub overlay: OverlaySpec,
    /// Number of cycles to run (the epoch length γ).
    pub cycles: u32,
    /// Initial value distribution (ignored for COUNT setups).
    pub values: ValueInit,
    /// Aggregate under test.
    pub aggregate: AggregateSetup,
    /// Node failure schedule.
    pub failure: FailureModel,
    /// Communication failure probabilities.
    pub comm: CommFailure,
    /// NEWSCAST-only warm-up cycles before the epoch starts.
    pub newscast_warmup: u32,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            n: 1_000,
            overlay: OverlaySpec::Complete,
            cycles: 30,
            values: ValueInit::Peak { total: 1_000.0 },
            aggregate: AggregateSetup::Average,
            failure: FailureModel::None,
            comm: CommFailure::NONE,
            newscast_warmup: 5,
        }
    }
}

/// Everything measured during one experiment run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Estimate variance per cycle (`variance[0]` is the initial state,
    /// `variance[k]` after cycle `k`), over live participating nodes.
    pub variance: Vec<f64>,
    /// Estimate mean per cycle (µ_i of Eq. (1)).
    pub mean: Vec<f64>,
    /// Minimum estimate per cycle.
    pub min: Vec<f64>,
    /// Maximum estimate per cycle.
    pub max: Vec<f64>,
    /// Live node count per cycle.
    pub alive: Vec<usize>,
    /// Communication report per cycle.
    pub reports: Vec<CycleReport>,
    /// Final per-node aggregate estimates, interpreted per
    /// [`AggregateSetup`]: raw averages, `1/value` size estimates, or
    /// trimmed multi-instance size estimates.
    pub final_estimates: Vec<f64>,
}

impl RunOutcome {
    /// Average per-cycle convergence factor over the first `k` cycles:
    /// `(σ²_k / σ²_0)^(1/k)` — the quantity plotted in Figures 3(a), 4
    /// and 7(a).
    ///
    /// # Panics
    ///
    /// Panics if fewer than `k` cycles were recorded or `k == 0`.
    pub fn convergence_factor(&self, k: u32) -> f64 {
        assert!(k > 0, "need at least one cycle");
        let k = k as usize;
        assert!(
            self.variance.len() > k,
            "only {} cycles recorded",
            self.variance.len() - 1
        );
        (self.variance[k] / self.variance[0]).powf(1.0 / k as f64)
    }

    /// Normalized variance series `σ²_i / σ²_0` (Figure 3(b)).
    pub fn variance_reduction(&self) -> Vec<f64> {
        let v0 = self.variance[0];
        self.variance.iter().map(|&v| v / v0).collect()
    }

    /// Mean of the final per-node estimates (one experiment dot in
    /// Figures 6 and 8).
    pub fn mean_final_estimate(&self) -> f64 {
        epidemic_common::stats::mean(&self.final_estimates)
    }

    /// Summary of the final per-node estimates.
    pub fn final_summary(&self) -> Summary {
        let stats: epidemic_common::stats::OnlineStats =
            self.final_estimates.iter().copied().collect();
        stats.summary()
    }
}

enum OverlayState {
    Complete(usize),
    Static(Graph),
    Newscast(Overlay),
}

impl OverlayState {
    fn sampler(&self) -> &dyn NeighborSampling {
        match self {
            OverlayState::Complete(_) => panic!("complete sampler materialized on demand"),
            OverlayState::Static(g) => g,
            OverlayState::Newscast(o) => o,
        }
    }
}

/// Uniform sampling over the current live population — the idealized
/// fully connected overlay of the paper, whose membership adapts to
/// crashes instantly (a dead node is in nobody's neighbor set). Static
/// graphs and NEWSCAST instead model the realistic behaviour: dead
/// neighbors are discovered by timeout.
struct LiveSampler<'a> {
    live: &'a [u32],
    slots: usize,
}

impl NeighborSampling for LiveSampler<'_> {
    fn node_count(&self) -> usize {
        self.slots
    }

    fn sample_neighbor(&self, node: usize, rng: &mut Xoshiro256) -> Option<usize> {
        if self.live.len() < 2 {
            return None;
        }
        loop {
            let peer = self.live[rng.index(self.live.len())] as usize;
            if peer != node {
                return Some(peer);
            }
        }
    }
}

impl ExperimentConfig {
    /// Runs the experiment deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (e.g. churn over a
    /// static overlay, `n < 2`, or an invalid topology parameter).
    pub fn run(&self, seed: u64) -> RunOutcome {
        assert!(self.n >= 2, "experiment needs at least two nodes");
        assert!(
            !self.failure.needs_growable_overlay()
                || matches!(self.overlay, OverlaySpec::Newscast { .. }),
            "churn requires a NEWSCAST overlay"
        );
        let mut rng = Xoshiro256::seed_from_u64(seed);

        // --- Overlay -----------------------------------------------------
        let mut clock: u32 = 0;
        let mut overlay = match self.overlay {
            OverlaySpec::Complete => OverlayState::Complete(self.n),
            OverlaySpec::Static(kind) => OverlayState::Static(
                kind.generate(self.n, &mut rng)
                    .expect("invalid topology parameters"),
            ),
            OverlaySpec::Newscast { c } => {
                let mut o = Overlay::random_init(self.n, c, &mut rng);
                for _ in 0..self.newscast_warmup {
                    clock += 1;
                    o.run_cycle(clock, &mut rng);
                }
                OverlayState::Newscast(o)
            }
        };

        // --- Aggregation state -------------------------------------------
        let mut net = Network::new(self.n);
        let field = match self.aggregate {
            AggregateSetup::Average => {
                let values = self.values.materialize(self.n, &mut rng);
                net.add_scalar_field(Rule::Average, |i| values[i])
            }
            AggregateSetup::CountPeak => {
                let leader = rng.index(self.n);
                net.add_scalar_field(Rule::Average, |i| if i == leader { 1.0 } else { 0.0 })
            }
            AggregateSetup::CountMap { leaders } => {
                let chosen = rng.sample_distinct(self.n, leaders);
                net.add_map_field(&chosen)
            }
        };
        let opts = CycleOptions {
            link_failure: self.comm.link_failure,
            message_loss: self.comm.message_loss,
        };

        let cap = self.cycles as usize + 1;
        let mut outcome = RunOutcome {
            variance: Vec::with_capacity(cap),
            mean: Vec::with_capacity(cap),
            min: Vec::with_capacity(cap),
            max: Vec::with_capacity(cap),
            alive: Vec::with_capacity(cap),
            reports: Vec::with_capacity(self.cycles as usize),
            final_estimates: Vec::new(),
        };
        record_stats(&net, field, self.aggregate, &mut outcome);

        // --- Cycle loop ---------------------------------------------------
        for cycle in 0..self.cycles {
            // Failures strike before the cycle (worst case, Section 6.1).
            let crashes = self.failure.crashes_at(cycle, net.alive_count());
            if crashes > 0 {
                let alive_idx: Vec<u32> = (0..net.slot_count() as u32)
                    .filter(|&i| net.is_alive(i as usize))
                    .collect();
                for pick in rng.sample_distinct(alive_idx.len(), crashes.min(alive_idx.len())) {
                    let victim = alive_idx[pick] as usize;
                    net.crash(victim);
                    if let OverlayState::Newscast(o) = &mut overlay {
                        o.crash(victim);
                    }
                }
            }
            let joins = self.failure.joins_at(cycle);
            for _ in 0..joins {
                let idx = net.add_node();
                if let OverlayState::Newscast(o) = &mut overlay {
                    // Bootstrap through a random live member.
                    let introducer = loop {
                        let cand = rng.index(o.slot_count());
                        if o.is_alive(cand) && cand != idx {
                            break cand;
                        }
                    };
                    let joined = o.join_via(introducer, clock);
                    debug_assert_eq!(joined, idx);
                }
            }

            clock += 1;
            // Membership gossip first, then aggregation over fresh views.
            if let OverlayState::Newscast(o) = &mut overlay {
                o.run_cycle(clock, &mut rng);
            }
            let report = match &overlay {
                OverlayState::Complete(n) => {
                    if matches!(self.failure, FailureModel::None) {
                        let sampler = CompleteSampler::new(*n);
                        net.run_cycle(&sampler, opts, &mut rng)
                    } else {
                        // Perfect membership: sample among live nodes only.
                        let live: Vec<u32> = (0..net.slot_count() as u32)
                            .filter(|&i| net.is_alive(i as usize))
                            .collect();
                        let sampler = LiveSampler {
                            live: &live,
                            slots: net.slot_count(),
                        };
                        net.run_cycle(&sampler, opts, &mut rng)
                    }
                }
                _ => net.run_cycle(overlay.sampler(), opts, &mut rng),
            };
            outcome.reports.push(report);
            record_stats(&net, field, self.aggregate, &mut outcome);
        }

        outcome.final_estimates = match self.aggregate {
            AggregateSetup::Average => net.scalar_values(field),
            AggregateSetup::CountPeak => net
                .scalar_values(field)
                .into_iter()
                .map(|v| if v > 0.0 { 1.0 / v } else { f64::INFINITY })
                .collect(),
            AggregateSetup::CountMap { .. } => net.count_estimates(field),
        };
        outcome
    }
}

fn record_stats(
    net: &Network,
    field: crate::network::FieldId,
    aggregate: AggregateSetup,
    outcome: &mut RunOutcome,
) {
    let summary = match aggregate {
        AggregateSetup::Average | AggregateSetup::CountPeak => net.scalar_summary(field),
        AggregateSetup::CountMap { .. } => {
            // Track the per-node total instance mass: its variance decays
            // at the same rate as the underlying averaging.
            let stats: epidemic_common::stats::OnlineStats = (0..net.slot_count())
                .filter(|&i| net.is_alive(i) && net.is_participating(i))
                .map(|i| net.map_value(field, i).total())
                .collect();
            stats.summary()
        }
    };
    outcome.variance.push(summary.variance);
    outcome.mean.push(summary.mean);
    outcome.min.push(summary.min);
    outcome.max.push(summary.max);
    outcome.alive.push(net.alive_count());
}

/// Runs `seeds.len()` independent repetitions across OS threads, returning
/// outcomes in seed order.
pub fn run_many(config: &ExperimentConfig, seeds: &[u64]) -> Vec<RunOutcome> {
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(seeds.len().max(1));
    if workers <= 1 || seeds.len() <= 1 {
        return seeds.iter().map(|&s| config.run(s)).collect();
    }
    let mut slots: Vec<Option<RunOutcome>> = (0..seeds.len()).map(|_| None).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slot_refs: Vec<std::sync::Mutex<&mut Option<RunOutcome>>> =
        slots.iter_mut().map(std::sync::Mutex::new).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if idx >= seeds.len() {
                    break;
                }
                let outcome = config.run(seeds[idx]);
                **slot_refs[idx].lock().unwrap() = Some(outcome);
            });
        }
    });
    drop(slot_refs);
    slots
        .into_iter()
        .map(|s| s.expect("worker missed a seed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use epidemic_aggregation::theory::RHO_PUSH_PULL;

    fn base(n: usize) -> ExperimentConfig {
        ExperimentConfig {
            n,
            values: ValueInit::Peak { total: n as f64 },
            ..ExperimentConfig::default()
        }
    }

    #[test]
    fn average_converges_on_complete_graph() {
        let cfg = base(2000);
        let out = cfg.run(1);
        assert_eq!(out.variance.len(), 31);
        assert!((out.mean[0] - 1.0).abs() < 1e-9);
        assert!((out.mean[30] - 1.0).abs() < 1e-9, "mean drifted");
        let factor = out.convergence_factor(20);
        assert!((factor - RHO_PUSH_PULL).abs() < 0.05, "factor {factor}");
    }

    #[test]
    fn average_converges_on_newscast() {
        let cfg = ExperimentConfig {
            overlay: OverlaySpec::Newscast { c: 30 },
            ..base(2000)
        };
        let out = cfg.run(2);
        let factor = out.convergence_factor(20);
        assert!(factor < 0.45, "newscast convergence factor {factor}");
    }

    #[test]
    fn average_on_static_random_topology() {
        let cfg = ExperimentConfig {
            overlay: OverlaySpec::Static(TopologyKind::Random { k: 20 }),
            ..base(2000)
        };
        let out = cfg.run(3);
        let factor = out.convergence_factor(20);
        assert!(factor < 0.42, "random-20 convergence factor {factor}");
    }

    #[test]
    fn lattice_is_much_slower() {
        let fast = ExperimentConfig {
            overlay: OverlaySpec::Static(TopologyKind::Random { k: 20 }),
            ..base(2000)
        }
        .run(4)
        .convergence_factor(20);
        let slow = ExperimentConfig {
            overlay: OverlaySpec::Static(TopologyKind::RingLattice { k: 20 }),
            ..base(2000)
        }
        .run(4)
        .convergence_factor(20);
        assert!(
            slow > fast + 0.2,
            "lattice should converge much slower: lattice {slow} vs random {fast}"
        );
    }

    #[test]
    fn determinism() {
        let cfg = base(500);
        let a = cfg.run(42);
        let b = cfg.run(42);
        assert_eq!(a.variance, b.variance);
        assert_eq!(a.final_estimates, b.final_estimates);
    }

    #[test]
    fn count_peak_estimates_network_size() {
        let cfg = ExperimentConfig {
            aggregate: AggregateSetup::CountPeak,
            overlay: OverlaySpec::Newscast { c: 30 },
            ..base(1000)
        };
        let out = cfg.run(5);
        let est = out.mean_final_estimate();
        assert!((est - 1000.0).abs() < 20.0, "size estimate {est}");
    }

    #[test]
    fn count_map_estimates_network_size() {
        let cfg = ExperimentConfig {
            aggregate: AggregateSetup::CountMap { leaders: 10 },
            overlay: OverlaySpec::Newscast { c: 30 },
            ..base(1000)
        };
        let out = cfg.run(6);
        assert_eq!(out.final_estimates.len(), 1000);
        let est = out.mean_final_estimate();
        assert!((est - 1000.0).abs() < 25.0, "size estimate {est}");
    }

    #[test]
    fn sudden_death_late_in_epoch_is_harmless() {
        let cfg = ExperimentConfig {
            aggregate: AggregateSetup::CountPeak,
            overlay: OverlaySpec::Newscast { c: 30 },
            failure: FailureModel::SuddenDeath {
                fraction: 0.5,
                at_cycle: 25,
            },
            ..base(1000)
        };
        let out = cfg.run(7);
        assert_eq!(*out.alive.last().unwrap(), 500);
        let est = out.mean_final_estimate();
        // Crash at cycle 25: variance is tiny, damage negligible; the
        // protocol reports the size at epoch start.
        assert!((est - 1000.0).abs() < 50.0, "estimate {est}");
    }

    #[test]
    fn churn_keeps_size_constant() {
        let cfg = ExperimentConfig {
            aggregate: AggregateSetup::CountPeak,
            overlay: OverlaySpec::Newscast { c: 30 },
            failure: FailureModel::Churn { per_cycle: 20 },
            ..base(1000)
        };
        let out = cfg.run(8);
        for &alive in &out.alive {
            assert_eq!(alive, 1000);
        }
        // Estimates remain in a sane band despite 60% substitution.
        let est = out.mean_final_estimate();
        assert!(est > 500.0 && est < 2000.0, "estimate {est}");
    }

    #[test]
    #[should_panic(expected = "churn requires a NEWSCAST overlay")]
    fn churn_rejected_on_static_overlay() {
        let cfg = ExperimentConfig {
            failure: FailureModel::Churn { per_cycle: 5 },
            ..base(100)
        };
        cfg.run(9);
    }

    #[test]
    fn link_failure_slows_convergence() {
        let clean = base(2000).run(10).convergence_factor(20);
        let lossy = ExperimentConfig {
            comm: CommFailure::links(0.6),
            ..base(2000)
        }
        .run(10)
        .convergence_factor(20);
        assert!(
            lossy > clean + 0.15,
            "link failure too cheap: {clean} -> {lossy}"
        );
        // But the mean is unbiased.
        let out = ExperimentConfig {
            comm: CommFailure::links(0.6),
            ..base(2000)
        }
        .run(11);
        assert!((out.mean[30] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn run_many_matches_sequential_and_is_ordered() {
        let cfg = base(300);
        let seeds = [1u64, 2, 3, 4, 5, 6, 7];
        let parallel = run_many(&cfg, &seeds);
        for (i, &seed) in seeds.iter().enumerate() {
            let solo = cfg.run(seed);
            assert_eq!(parallel[i].variance, solo.variance, "seed {seed}");
        }
    }

    #[test]
    fn variance_reduction_is_normalized() {
        let out = base(500).run(12);
        let series = out.variance_reduction();
        assert_eq!(series[0], 1.0);
        assert!(series[20] < 1e-8);
    }

    #[test]
    #[should_panic(expected = "at least two nodes")]
    fn tiny_network_rejected() {
        base(1).run(0);
    }
}
