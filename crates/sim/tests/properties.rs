//! Property-based tests of the cycle kernel's conservation laws.

use epidemic_aggregation::rule::Rule;
use epidemic_common::rng::Xoshiro256;
use epidemic_sim::network::{CycleOptions, Network};
use epidemic_topology::CompleteSampler;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn mean_is_invariant_without_message_loss(
        n in 4usize..200,
        cycles in 1u32..12,
        link_failure in 0.0f64..0.9,
        seed in 0u64..10_000,
    ) {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut net = Network::new(n);
        let f = net.add_scalar_field(Rule::Average, |i| (i as f64).sin() * 100.0);
        let sampler = CompleteSampler::new(n);
        let before = net.scalar_summary(f).mean;
        for _ in 0..cycles {
            net.run_cycle(
                &sampler,
                CycleOptions { link_failure, message_loss: 0.0 },
                &mut rng,
            );
        }
        let after = net.scalar_summary(f).mean;
        prop_assert!((after - before).abs() < 1e-9 * (1.0 + before.abs()));
    }

    #[test]
    fn estimates_stay_within_initial_envelope(
        n in 4usize..200,
        cycles in 1u32..12,
        message_loss in 0.0f64..0.5,
        seed in 0u64..10_000,
    ) {
        // Averaging merges are convex: even with message loss, no node's
        // estimate can ever leave [initial min, initial max].
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut net = Network::new(n);
        let f = net.add_scalar_field(Rule::Average, |i| (i % 7) as f64 * 3.0 - 9.0);
        let sampler = CompleteSampler::new(n);
        let s0 = net.scalar_summary(f);
        for _ in 0..cycles {
            net.run_cycle(
                &sampler,
                CycleOptions { link_failure: 0.0, message_loss },
                &mut rng,
            );
        }
        let s = net.scalar_summary(f);
        prop_assert!(s.min >= s0.min - 1e-12);
        prop_assert!(s.max <= s0.max + 1e-12);
    }

    #[test]
    fn variance_never_increases_without_failures(
        n in 4usize..150,
        seed in 0u64..10_000,
    ) {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut net = Network::new(n);
        let f = net.add_scalar_field(Rule::Average, |i| if i == 0 { n as f64 } else { 0.0 });
        let sampler = CompleteSampler::new(n);
        let mut last = net.scalar_summary(f).variance;
        for _ in 0..10 {
            net.run_cycle(&sampler, CycleOptions::default(), &mut rng);
            let v = net.scalar_summary(f).variance;
            prop_assert!(v <= last + 1e-12, "variance rose {last} -> {v}");
            last = v;
        }
    }

    #[test]
    fn map_mass_conserved_under_link_failures(
        n in 4usize..150,
        leaders in 1usize..4,
        link_failure in 0.0f64..0.8,
        seed in 0u64..10_000,
    ) {
        prop_assume!(leaders < n);
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut net = Network::new(n);
        let leader_ids: Vec<usize> = (0..leaders).collect();
        let f = net.add_map_field(&leader_ids);
        let sampler = CompleteSampler::new(n);
        for _ in 0..8 {
            net.run_cycle(
                &sampler,
                CycleOptions { link_failure, message_loss: 0.0 },
                &mut rng,
            );
        }
        for &l in &leader_ids {
            let mass = net.map_mass(f, l as u64);
            prop_assert!((mass - 1.0).abs() < 1e-9, "leader {} mass {}", l, mass);
        }
    }

    #[test]
    fn crashes_only_remove_mass(
        n in 10usize..150,
        crash_count in 1usize..9,
        seed in 0u64..10_000,
    ) {
        prop_assume!(crash_count < n);
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut net = Network::new(n);
        let f = net.add_scalar_field(Rule::Average, |_| 1.0);
        let sampler = CompleteSampler::new(n);
        for _ in 0..3 {
            net.run_cycle(&sampler, CycleOptions::default(), &mut rng);
        }
        for i in 0..crash_count {
            net.crash(i);
        }
        prop_assert_eq!(net.alive_count(), n - crash_count);
        // All values were 1.0, so survivors' mean is still exactly 1.0.
        let s = net.scalar_summary(f);
        prop_assert_eq!(s.count as usize, n - crash_count);
        prop_assert!((s.mean - 1.0).abs() < 1e-12);
    }
}
