//! Sensor fleet with adaptive restart: tracking a moving signal.
//!
//! A fleet of temperature sensors gossips four aggregates at once —
//! mean, mean of squares (for the variance), minimum and maximum — while
//! the underlying temperature field drifts. The epoch mechanism
//! (Section 4.1) restarts the aggregation from fresh readings every γ
//! cycles, so the reported aggregates track the drift with one epoch of
//! lag.
//!
//! Run with: `cargo run --release --example sensor_fleet`

use epidemic::aggregation::estimator;
use epidemic::aggregation::rule::Rule;
use epidemic::common::rng::Xoshiro256;
use epidemic::common::stats;
use epidemic::newscast::Overlay;
use epidemic::sim::network::{CycleOptions, Network};

fn main() {
    let n = 2_000usize;
    let gamma = 25u32;
    let mut rng = Xoshiro256::seed_from_u64(3);
    let mut overlay = Overlay::random_init(n, 30, &mut rng);
    let mut net = Network::new(n);

    // Per-sensor offset from the regional baseline.
    let offsets: Vec<f64> = (0..n).map(|_| rng.next_f64() * 8.0 - 4.0).collect();
    let reading = |baseline: f64, i: usize| baseline + offsets[i];

    let avg = net.add_scalar_field(Rule::Average, |_| 0.0);
    let avg_sq = net.add_scalar_field(Rule::Average, |_| 0.0);
    let min = net.add_scalar_field(Rule::Min, |_| 0.0);
    let max = net.add_scalar_field(Rule::Max, |_| 0.0);

    println!("epoch | baseline | est. mean | est. std | est. min | est. max");
    println!("------+----------+-----------+----------+----------+---------");
    let mut clock = 0u32;
    for epoch in 0..8 {
        // The region warms by 1.5 degrees per epoch.
        let baseline = 15.0 + epoch as f64 * 1.5;
        // Epoch restart: re-read the sensors.
        net.reset_scalar_field(avg, |i| reading(baseline, i));
        net.reset_scalar_field(avg_sq, |i| reading(baseline, i).powi(2));
        net.reset_scalar_field(min, |i| reading(baseline, i));
        net.reset_scalar_field(max, |i| reading(baseline, i));
        for _ in 0..gamma {
            clock += 1;
            overlay.run_cycle(clock, &mut rng);
            net.run_cycle(&overlay, CycleOptions::default(), &mut rng);
        }
        // Any single node's state now approximates the fleet aggregates.
        let probe = 0usize;
        let mean = net.scalar_value(avg, probe);
        let mean_sq = net.scalar_value(avg_sq, probe);
        let std = estimator::variance_estimate(mean, mean_sq).sqrt();
        println!(
            "{epoch:>5} | {baseline:>8.2} | {mean:>9.3} | {std:>8.3} | {mn:>8.3} | {mx:>8.3}",
            mn = net.scalar_value(min, probe),
            mx = net.scalar_value(max, probe),
        );
        // Sanity: the gossip estimates match direct computation.
        let truth: Vec<f64> = (0..n).map(|i| reading(baseline, i)).collect();
        assert!((mean - stats::mean(&truth)).abs() < 0.05);
    }
    println!("\neach row was read from ONE arbitrary sensor — after an epoch,");
    println!("every node holds the fleet-wide aggregates locally");
}
