//! A thousand-node gossip cluster over real UDP — in one process, or
//! sharded across processes and hosts.
//!
//! The `udp_cluster` example runs the paper's Figure 1 literally: one OS
//! thread per node. This example runs the same protocol at a scale that
//! architecture cannot reach on a laptop: 1024 virtual nodes (or far
//! more — see `--n`) multiplexed behind a small reader socket set and
//! `workers + readers + 1` OS threads (`net::mux`), with
//! `recvmmsg`/`sendmmsg` syscall batching on Linux. Every exchange still
//! crosses the kernel's UDP stack; only the per-node thread and socket
//! are gone.
//!
//! The mux wire frame routes by cluster-wide virtual-node id, so the
//! same cluster can be sharded over multiple sockets, processes, or
//! hosts through a `PeerTable`:
//!
//! ```text
//! # one process, 1024 vnodes (the default)
//! cargo run --release --example mux_cluster
//!
//! # four reader sockets, forced portable (one-syscall-per-datagram) I/O
//! cargo run --release --example mux_cluster -- --readers 4 --io portable
//!
//! # 100k vnodes: slow the cycle down and keep the protocol AVERAGE-only
//! cargo run --release --example mux_cluster -- \
//!     --n 100000 --readers 4 --cycle-ms 2000 --gamma 10 --average --secs 30
//!
//! # the same cluster split across two processes / hosts: run one shard
//! # per process, all with the same --hosts list (shard order)
//! cargo run --release --example mux_cluster -- --hosts 10.0.0.1:7000,10.0.0.2:7000 --shard 0/2
//! cargo run --release --example mux_cluster -- --hosts 10.0.0.1:7000,10.0.0.2:7000 --shard 1/2
//!
//! # NEWSCAST membership instead of the static table (vnode 0 introduces)
//! cargo run --release --example mux_cluster -- --gossip
//!
//! # serve live metrics while the cluster runs, and dump the protocol
//! # event trace as JSONL on exit
//! cargo run --release --example mux_cluster -- \
//!     --metrics-addr 127.0.0.1:9184 --trace-out /tmp/mux-trace.jsonl
//! # ...then, from another terminal:
//! curl -s http://127.0.0.1:9184/metrics
//!
//! # CI smoke: a small 2-shard cluster over loopback in one process
//! # (combines with --readers / --io to smoke those paths); the smoke
//! # run always self-scrapes /metrics and fails on dead telemetry
//! cargo run --release --example mux_cluster -- --smoke
//!
//! # multi-tenant query plane: serve client RPC on a UDP port; with
//! # --smoke this runs the full wire leg — a second named query is
//! # installed over the wire mid-run, submitted to, and read back until
//! # the estimate converges (failing the run if it never does)
//! cargo run --release --example mux_cluster -- --query
//! cargo run --release --example mux_cluster -- --smoke --query
//! ```

use epidemic::aggregation::{AggregateKind, InstanceSpec, LeaderPolicy, NodeConfig};
use epidemic::net::batch::IoBackend;
use epidemic::net::cluster::Cluster;
use epidemic::net::codec::{decode_rpc_response, encode_rpc_request};
use epidemic::net::directory::{DirectorySpec, GossipDirectoryConfig};
use epidemic::net::mux::{MuxCluster, MuxClusterConfig, PeerTable};
use epidemic::net::{write_jsonl, TraceEvent};
use epidemic::query::{QueryDescriptor, QueryPlaneConfig, RpcRequest, RpcStatus};
use std::io::{Read, Write};
use std::net::{SocketAddr, UdpSocket};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Per-vnode event-ring capacity when `--trace-out` asks for a trace.
const TRACE_CAPACITY: usize = 4_096;

#[derive(Debug)]
struct Args {
    n: usize,
    workers: Option<usize>,
    readers: Option<usize>,
    io: Option<IoBackend>,
    cycle_ms: u64,
    gamma: u32,
    average: bool,
    seed: u64,
    secs: u64,
    gossip: bool,
    smoke: bool,
    query: bool,
    hosts: Vec<SocketAddr>,
    shard: Option<(usize, usize)>, // (k, m): this process is shard k of m
    metrics_addr: Option<SocketAddr>,
    trace_out: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        n: 1024,
        workers: None,
        readers: None,
        io: None,
        cycle_ms: 50,
        gamma: 10,
        average: false,
        seed: 0xC0FFEE,
        secs: 3,
        gossip: false,
        smoke: false,
        query: false,
        hosts: Vec::new(),
        shard: None,
        metrics_addr: None,
        trace_out: None,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match flag.as_str() {
            "--n" => args.n = value("--n")?.parse().map_err(|e| format!("--n: {e}"))?,
            "--workers" => {
                args.workers = Some(
                    value("--workers")?
                        .parse()
                        .map_err(|e| format!("--workers: {e}"))?,
                )
            }
            "--readers" => {
                args.readers = Some(
                    value("--readers")?
                        .parse()
                        .map_err(|e| format!("--readers: {e}"))?,
                )
            }
            "--io" => {
                let spec = value("--io")?;
                args.io = Some(
                    IoBackend::from_override(&spec)
                        .ok_or_else(|| format!("--io wants batched|portable, got {spec}"))?,
                );
            }
            "--cycle-ms" => {
                args.cycle_ms = value("--cycle-ms")?
                    .parse()
                    .map_err(|e| format!("--cycle-ms: {e}"))?
            }
            "--gamma" => {
                args.gamma = value("--gamma")?
                    .parse()
                    .map_err(|e| format!("--gamma: {e}"))?
            }
            "--average" => args.average = true,
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--secs" => {
                args.secs = value("--secs")?
                    .parse()
                    .map_err(|e| format!("--secs: {e}"))?
            }
            "--gossip" => args.gossip = true,
            "--smoke" => args.smoke = true,
            "--query" => args.query = true,
            "--hosts" => {
                for host in value("--hosts")?.split(',') {
                    args.hosts
                        .push(host.parse().map_err(|e| format!("--hosts {host}: {e}"))?);
                }
            }
            "--metrics-addr" => {
                args.metrics_addr = Some(
                    value("--metrics-addr")?
                        .parse()
                        .map_err(|e| format!("--metrics-addr: {e}"))?,
                )
            }
            "--trace-out" => args.trace_out = Some(PathBuf::from(value("--trace-out")?)),
            "--shard" => {
                let spec = value("--shard")?;
                let (k, m) = spec
                    .split_once('/')
                    .ok_or_else(|| format!("--shard wants k/m, got {spec}"))?;
                let k = k.parse().map_err(|e| format!("--shard: {e}"))?;
                let m = m.parse().map_err(|e| format!("--shard: {e}"))?;
                args.shard = Some((k, m));
            }
            other => return Err(format!("unknown flag {other} (see the example header)")),
        }
    }
    if let Some((k, m)) = args.shard {
        if args.hosts.len() != m {
            return Err(format!(
                "--shard {k}/{m} needs exactly {m} --hosts entries, got {}",
                args.hosts.len()
            ));
        }
        if k >= m {
            return Err(format!("--shard {k}/{m}: shard index out of range"));
        }
    } else if !args.hosts.is_empty() {
        return Err("--hosts without --shard k/m".into());
    }
    Ok(args)
}

fn node_config(args: &Args) -> Result<NodeConfig, Box<dyn std::error::Error>> {
    let mut builder = NodeConfig::builder();
    builder
        .gamma(args.gamma)
        .cycle_length(args.cycle_ms) // δ
        .timeout((args.cycle_ms * 2 / 5).max(1))
        .instance(InstanceSpec::AVERAGE)
        .initial_size_guess(args.n as f64);
    if !args.gossip && !args.average {
        // COUNT leaders are elected per epoch; keep the demo focused on
        // AVERAGE when membership itself is still bootstrapping — and
        // when --average asks for the cheapest possible protocol (the
        // 10^5-vnode runs).
        builder.instance(InstanceSpec::CountMap {
            leader: LeaderPolicy::Probability { concurrency: 8.0 },
        });
    }
    Ok(builder.build()?)
}

/// Applies the I/O-layout flags (`--workers`, `--readers`, `--io`) to a
/// cluster config; unset flags keep the core-aware spawn defaults.
fn with_io_layout(mut config: MuxClusterConfig, args: &Args) -> MuxClusterConfig {
    if let Some(workers) = args.workers {
        config = config.with_workers(workers);
    }
    if let Some(readers) = args.readers {
        config = config.with_readers(readers);
    }
    if let Some(io) = args.io {
        config = config.with_io(io);
    }
    config
}

/// Applies the `--query` flag: enables the query plane with a
/// smoke-friendly catalog gossip period, and (when `rpc` asks for it)
/// binds the client RPC listener on an ephemeral loopback port.
fn with_query_flags(mut config: MuxClusterConfig, args: &Args, rpc: bool) -> MuxClusterConfig {
    if args.query {
        config = config.with_query_config(QueryPlaneConfig {
            gossip_period: args.cycle_ms,
            ..QueryPlaneConfig::default()
        });
        if rpc {
            config = config.with_rpc_addr("127.0.0.1:0".parse().unwrap());
        }
    }
    config
}

/// Applies the telemetry flags: `--metrics-addr` serves Prometheus text
/// from the cluster's registry, `--trace-out` turns on the per-vnode
/// protocol event rings (dumped as JSONL on exit by [`dump_trace`]).
fn with_telemetry_flags(mut config: MuxClusterConfig, args: &Args) -> MuxClusterConfig {
    if let Some(addr) = args.metrics_addr {
        config = config.with_metrics_addr(addr);
    }
    if args.trace_out.is_some() {
        config = config.with_trace(TRACE_CAPACITY);
    }
    config
}

/// Drains every local vnode's event ring and appends the events to
/// `path` as JSONL (one `TraceEvent` object per line).
fn dump_trace(
    cluster: &MuxCluster,
    path: &std::path::Path,
) -> Result<usize, Box<dyn std::error::Error>> {
    let mut events: Vec<TraceEvent> = Vec::new();
    for i in 0..cluster.len() {
        events.extend(cluster.take_trace(i));
    }
    write_jsonl(path, &events)?;
    Ok(events.len())
}

/// One-shot `GET /metrics` against a [`MetricsServer`] over a plain TCP
/// stream; returns the response body (Prometheus text format).
fn scrape_metrics(addr: SocketAddr) -> Result<String, Box<dyn std::error::Error>> {
    let mut stream = std::net::TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    write!(
        stream,
        "GET /metrics HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let body = response
        .split_once("\r\n\r\n")
        .ok_or("malformed /metrics response")?
        .1;
    Ok(body.to_string())
}

/// Value of a series in Prometheus text output, summed across labeled
/// instances; `None` when the series is absent entirely.
fn series_value(body: &str, name: &str) -> Option<f64> {
    let mut found = false;
    let mut total = 0.0;
    for line in body.lines() {
        if line.starts_with('#') {
            continue;
        }
        let series = line.split(['{', ' ']).next().unwrap_or("");
        if series != name {
            continue;
        }
        if let Some(v) = line.rsplit(' ').next().and_then(|v| v.parse::<f64>().ok()) {
            found = true;
            total += v;
        }
    }
    found.then_some(total)
}

/// `--smoke --query`: the wire leg. With the cluster already running —
/// no restart — a plain UDP client installs a *second* named query
/// through shard 0's RPC listener, submits one sample through whichever
/// node the round-robin picks next, and reads the estimate back until it
/// converges on the cluster-wide truth. Returns `false` (after
/// explaining why) if any step fails or the estimate never settles.
fn run_query_leg(shards: &[MuxCluster], n: usize) -> Result<bool, Box<dyn std::error::Error>> {
    let rpc_addr = shards[0]
        .rpc_addr()
        .ok_or("query: rpc listener not bound")?;
    let client = UdpSocket::bind("127.0.0.1:0")?;
    client.set_read_timeout(Some(Duration::from_millis(500)))?;
    let rpc = |request: RpcRequest| -> Result<_, Box<dyn std::error::Error>> {
        let frame = encode_rpc_request(&request);
        let mut buf = [0u8; 64];
        for _ in 0..10 {
            client.send_to(&frame, rpc_addr)?;
            match client.recv_from(&mut buf) {
                Ok((len, _)) => {
                    let response = decode_rpc_response(&buf[..len])?;
                    if response.id == request.id() {
                        return Ok(response);
                    }
                    // A late reply to an earlier retry: keep draining.
                    continue;
                }
                Err(_) => continue, // UDP timeout: retry
            }
        }
        Err(format!("query: rpc to {rpc_addr} got no response").into())
    };
    let mut next_id = 100u64;
    let mut id = || {
        next_id += 1;
        next_id
    };

    // Tenant #2 arrives over the wire mid-run ("wire.temp"; tenant #1,
    // "shard.load", was installed through the operator seam at spawn).
    let descriptor = QueryDescriptor::new("wire.temp", AggregateKind::Average)
        .with_gamma(8)
        .with_cycle_length(40)
        .with_default_value(2.0);
    let install = rpc(RpcRequest::Install {
        id: id(),
        descriptor,
    })?;
    if install.status != RpcStatus::Ok {
        eprintln!("query: wire install rejected: {install:?}");
        return Ok(false);
    }

    // Submit through a different node (the listener round-robins): this
    // succeeds only once catalog gossip delivered the query there.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let response = rpc(RpcRequest::Submit {
            id: id(),
            name: "wire.temp".into(),
            value: 66.0,
        })?;
        match response.status {
            RpcStatus::Ok => break,
            RpcStatus::UnknownQuery if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(30));
            }
            other => {
                eprintln!("query: wire submit failed with {other:?}");
                return Ok(false);
            }
        }
    }

    // Read back until the estimate converges on the cluster-wide truth:
    // n−1 nodes hold the 2.0 default, one client submitted 66.0 — far
    // enough from the all-defaults mean (2.0) that a read can only pass
    // once the submitted sample has actually mixed in.
    let truth = ((n - 1) as f64 * 2.0 + 66.0) / n as f64;
    let deadline = Instant::now() + Duration::from_secs(15);
    let mut last = f64::NAN;
    while Instant::now() < deadline {
        let response = rpc(RpcRequest::Read {
            id: id(),
            name: "wire.temp".into(),
        })?;
        if response.status == RpcStatus::Ok {
            last = response.estimate;
            if (last - truth).abs() < 0.2 {
                println!("query: wire.temp converged to {last:.3} (truth {truth:.3})");
                return Ok(true);
            }
        }
        std::thread::sleep(Duration::from_millis(30));
    }
    eprintln!("query: wire.temp never converged: last {last} vs truth {truth:.3}");
    Ok(false)
}

fn directory_spec(gossip: bool) -> DirectorySpec {
    if gossip {
        // Vnode 0 is the introducer; everyone else bootstraps over the
        // wire — no static peer table anywhere.
        DirectorySpec::Gossip(GossipDirectoryConfig::new(20, 40).with_introducer_node(0))
    } else {
        DirectorySpec::Static
    }
}

/// Harvests every local node's latest report and prints shard-level
/// aggregate estimates. Returns the mean AVERAGE estimate, if any.
fn report(label: &str, cluster: &MuxCluster, truth_avg: f64, n: usize) -> Option<f64> {
    let reports = cluster.take_all_reports();
    let totals = cluster.total_datagram_counts();
    let mut epochs_seen = 0usize;
    let mut avg_sum = 0.0;
    let mut avg_count = 0usize;
    let mut size_sum = 0.0;
    let mut size_count = 0usize;
    for node_reports in &reports {
        epochs_seen += node_reports.len();
        if let Some(last) = node_reports.last() {
            if let Some(avg) = last.scalar(0) {
                avg_sum += avg;
                avg_count += 1;
            }
            if let Some(size) = last.count_estimate() {
                size_sum += size;
                size_count += 1;
            }
        }
    }
    println!(
        "{label}: {epochs_seen} epoch reports from {avg_count} of {} local nodes; \
         {} datagrams in / {} out, {} send errors \
         (membership: {} in / {} out, byte overhead {:.3})",
        cluster.len(),
        totals.received(),
        totals.sent(),
        totals.send_errors,
        totals.membership_received,
        totals.membership_sent,
        totals.membership_byte_overhead(),
    );
    let syscalls = cluster.syscall_counts();
    let moved = totals.received() + totals.sent();
    if moved > 0 {
        println!(
            "{label}: {} recv + {} send syscalls for {moved} datagrams \
             ({:.3} syscalls/datagram, {:?} backend, {} readers)",
            syscalls.recv_calls,
            syscalls.send_calls,
            (syscalls.recv_calls + syscalls.send_calls) as f64 / moved as f64,
            cluster.io_backend(),
            cluster.reader_count(),
        );
    }
    let mean = (avg_count > 0).then(|| avg_sum / avg_count as f64);
    if let Some(mean) = mean {
        println!("{label}: mean AVERAGE estimate {mean:.3} (truth {truth_avg})");
    }
    if size_count > 0 {
        println!(
            "{label}: mean COUNT estimate {:.1} (truth {n})",
            size_sum / size_count as f64
        );
    }
    mean
}

/// `--smoke`: a small 2-shard cluster over loopback in one process; used
/// by CI to keep the cross-socket sharding path from rotting (combined
/// with `--readers` / `--io` it smokes the multi-reader socket set and
/// the portable fallback too, and with `--gossip` the cross-shard
/// join/delta-view/piggyback path). Shard 0 always serves `/metrics` on
/// an ephemeral loopback port and the run self-scrapes it at the end,
/// failing if the load-bearing telemetry series are absent or zero.
/// Exits with an error if the shards fail to converge.
fn run_smoke(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let smoke_args = Args {
        n: 64,
        workers: Some(args.workers.unwrap_or(2)),
        readers: args.readers,
        io: args.io,
        cycle_ms: args.cycle_ms,
        gamma: args.gamma,
        average: args.average,
        seed: args.seed,
        secs: args.secs,
        gossip: args.gossip,
        smoke: true,
        query: args.query,
        hosts: Vec::new(),
        shard: None,
        metrics_addr: Some(
            args.metrics_addr
                .unwrap_or_else(|| "127.0.0.1:0".parse().unwrap()),
        ),
        trace_out: args.trace_out.clone(),
    };
    let n = smoke_args.n;
    let truth = (n as f64 + 1.0) / 2.0; // values 1..=n
    let config = node_config(&smoke_args)?;
    let table = PeerTable::loopback_split(n, 2)?;
    println!(
        "smoke: {n} vnodes over 2 loopback shards ({} and {})",
        table.shard_addr(0),
        table.shard_addr(1)
    );
    let shards = [
        MuxCluster::spawn(
            with_query_flags(
                with_telemetry_flags(
                    with_io_layout(
                        MuxClusterConfig::sharded(table.clone(), 0, config.clone())
                            .with_directory(directory_spec(smoke_args.gossip)),
                        &smoke_args,
                    ),
                    &smoke_args,
                ),
                &smoke_args,
                true,
            ),
            |i| (i + 1) as f64,
        )?,
        MuxCluster::spawn(
            with_query_flags(
                with_io_layout(
                    MuxClusterConfig::sharded(table, 1, config)
                        .with_directory(directory_spec(smoke_args.gossip)),
                    &smoke_args,
                ),
                &smoke_args,
                false,
            ),
            |i| (i + 1) as f64,
        )?,
    ];
    println!(
        "smoke: {} readers per shard, {:?} backend",
        shards[0].reader_count(),
        shards[0].io_backend()
    );
    if smoke_args.query {
        // Tenant #1 goes in through the operator seam while the cluster
        // is still settling; the wire leg below adds tenant #2 mid-run.
        shards[0].install_query(
            0,
            QueryDescriptor::new("shard.load", AggregateKind::Average)
                .with_gamma(8)
                .with_cycle_length(40)
                .with_default_value(1.0),
        )?;
    }
    std::thread::sleep(Duration::from_millis(2_000));
    let mut ok = true;
    for (s, shard) in shards.iter().enumerate() {
        match report(&format!("shard {s}"), shard, truth, n) {
            Some(mean) if (mean - truth).abs() < truth * 0.05 => {}
            Some(mean) => {
                eprintln!("shard {s}: mean {mean} too far from truth {truth}");
                ok = false;
            }
            None => {
                eprintln!("shard {s}: no epoch reports");
                ok = false;
            }
        }
        let counts = shard.total_datagram_counts();
        if counts.sent() == 0 || counts.received() == 0 {
            eprintln!("shard {s}: no datagrams moved");
            ok = false;
        }
    }

    // The wire leg runs against the still-live cluster: install tenant
    // #2 over UDP, submit, and read back until it converges.
    if smoke_args.query && !run_query_leg(&shards, n)? {
        ok = false;
    }

    // Telemetry self-scrape: the registry must expose live protocol
    // signal, not just serve an empty page. ρ is fed from the epoch
    // reports the `report()` calls above just drained.
    let metrics_addr = shards[0]
        .metrics_addr()
        .ok_or("smoke: /metrics not bound")?;
    let body = scrape_metrics(metrics_addr)?;
    let mut required = vec!["agg_exchanges", "epoch_variance_reduction_rho"];
    if smoke_args.gossip {
        required.push("membership_delta_bytes");
    }
    if smoke_args.query {
        // Both tenants live → installed gauge ≥ 2; the wire leg's
        // install/submit/read all ran through shard 0's RPC listener.
        required.extend(["query_installed", "query_submits", "rpc_requests"]);
    }
    for name in required {
        match series_value(&body, name) {
            Some(v) if v > 0.0 => println!("smoke: /metrics {name} = {v:.4}"),
            Some(_) => {
                eprintln!("smoke: /metrics series {name} is zero");
                ok = false;
            }
            None => {
                eprintln!("smoke: /metrics series {name} is absent");
                ok = false;
            }
        }
    }

    if let Some(path) = &smoke_args.trace_out {
        let events = dump_trace(&shards[0], path)?;
        println!("smoke: wrote {events} trace events to {}", path.display());
    }
    for shard in shards {
        shard.shutdown();
    }
    if !ok {
        return Err("smoke run failed to converge".into());
    }
    println!("smoke: both shards converged");
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = parse_args().map_err(|e| -> Box<dyn std::error::Error> { e.into() })?;
    if args.smoke {
        return run_smoke(&args);
    }

    let config = node_config(&args)?;
    let directory = directory_spec(args.gossip);
    let truth = (args.n as f64 + 1.0) / 2.0; // values 1..=n
    let started = Instant::now();
    let cluster = match args.shard {
        None => {
            println!(
                "spawning {} virtual gossip nodes behind a reader socket set...",
                args.n
            );
            MuxCluster::spawn(
                with_query_flags(
                    with_telemetry_flags(
                        with_io_layout(
                            MuxClusterConfig::new(args.n, config)
                                .with_seed(args.seed)
                                .with_directory(directory),
                            &args,
                        ),
                        &args,
                    ),
                    &args,
                    true,
                ),
                |i| (i + 1) as f64,
            )?
        }
        Some((k, m)) => {
            let table = PeerTable::split(args.n, args.hosts.clone());
            println!(
                "spawning shard {k}/{m}: vnodes {:?} on {}...",
                table.shard_range(k),
                table.shard_addr(k)
            );
            MuxCluster::spawn(
                with_query_flags(
                    with_telemetry_flags(
                        with_io_layout(
                            MuxClusterConfig::sharded(table, k, config)
                                .with_seed(args.seed)
                                .with_directory(directory),
                            &args,
                        ),
                        &args,
                    ),
                    &args,
                    k == 0,
                ),
                |i| (i + 1) as f64,
            )?
        }
    };
    println!(
        "up in {:?}: socket {}, {} OS threads ({} readers, {:?} backend) \
         hosting {} of {} vnodes{}",
        started.elapsed(),
        cluster.addr(),
        cluster.thread_count(),
        cluster.reader_count(),
        cluster.io_backend(),
        cluster.len(),
        cluster.total_len(),
        if args.gossip {
            " (NEWSCAST membership, introducer vnode 0)"
        } else {
            " (static directory)"
        },
    );

    if let Some(addr) = cluster.metrics_addr() {
        println!("serving Prometheus text on http://{addr}/metrics");
    }
    if let Some(addr) = cluster.rpc_addr() {
        println!("serving query-plane client RPC on udp://{addr}");
    }

    std::thread::sleep(Duration::from_secs(args.secs.max(1)));
    report("cluster", &cluster, truth, args.n);
    if let Some(path) = &args.trace_out {
        let events = dump_trace(&cluster, path)?;
        println!("wrote {events} trace events to {}", path.display());
    }
    cluster.shutdown();
    Ok(())
}
