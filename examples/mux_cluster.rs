//! A thousand-node gossip cluster over real UDP — in one process, or
//! sharded across processes and hosts.
//!
//! The `udp_cluster` example runs the paper's Figure 1 literally: one OS
//! thread per node. This example runs the same protocol at a scale that
//! architecture cannot reach on a laptop: 1024 virtual nodes multiplexed
//! behind ONE socket and `workers + 2` OS threads (`net::mux`). Every
//! exchange still crosses the kernel's UDP stack; only the per-node
//! thread and socket are gone.
//!
//! The mux wire frame routes by cluster-wide virtual-node id, so the
//! same cluster can be sharded over multiple sockets, processes, or
//! hosts through a `PeerTable`:
//!
//! ```text
//! # one process, 1024 vnodes (the default)
//! cargo run --release --example mux_cluster
//!
//! # the same cluster split across two processes / hosts: run one shard
//! # per process, all with the same --hosts list (shard order)
//! cargo run --release --example mux_cluster -- --hosts 10.0.0.1:7000,10.0.0.2:7000 --shard 0/2
//! cargo run --release --example mux_cluster -- --hosts 10.0.0.1:7000,10.0.0.2:7000 --shard 1/2
//!
//! # NEWSCAST membership instead of the static table (vnode 0 introduces)
//! cargo run --release --example mux_cluster -- --gossip
//!
//! # CI smoke: a small 2-shard cluster over loopback in one process
//! cargo run --release --example mux_cluster -- --smoke
//! ```

use epidemic::aggregation::{InstanceSpec, LeaderPolicy, NodeConfig};
use epidemic::net::cluster::Cluster;
use epidemic::net::directory::{DirectorySpec, GossipDirectoryConfig};
use epidemic::net::mux::{MuxCluster, MuxClusterConfig, PeerTable};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

#[derive(Debug)]
struct Args {
    n: usize,
    workers: usize,
    seed: u64,
    secs: u64,
    gossip: bool,
    smoke: bool,
    hosts: Vec<SocketAddr>,
    shard: Option<(usize, usize)>, // (k, m): this process is shard k of m
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        n: 1024,
        workers: 4,
        seed: 0xC0FFEE,
        secs: 3,
        gossip: false,
        smoke: false,
        hosts: Vec::new(),
        shard: None,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match flag.as_str() {
            "--n" => args.n = value("--n")?.parse().map_err(|e| format!("--n: {e}"))?,
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--secs" => {
                args.secs = value("--secs")?
                    .parse()
                    .map_err(|e| format!("--secs: {e}"))?
            }
            "--gossip" => args.gossip = true,
            "--smoke" => args.smoke = true,
            "--hosts" => {
                for host in value("--hosts")?.split(',') {
                    args.hosts
                        .push(host.parse().map_err(|e| format!("--hosts {host}: {e}"))?);
                }
            }
            "--shard" => {
                let spec = value("--shard")?;
                let (k, m) = spec
                    .split_once('/')
                    .ok_or_else(|| format!("--shard wants k/m, got {spec}"))?;
                let k = k.parse().map_err(|e| format!("--shard: {e}"))?;
                let m = m.parse().map_err(|e| format!("--shard: {e}"))?;
                args.shard = Some((k, m));
            }
            other => return Err(format!("unknown flag {other} (see the example header)")),
        }
    }
    if let Some((k, m)) = args.shard {
        if args.hosts.len() != m {
            return Err(format!(
                "--shard {k}/{m} needs exactly {m} --hosts entries, got {}",
                args.hosts.len()
            ));
        }
        if k >= m {
            return Err(format!("--shard {k}/{m}: shard index out of range"));
        }
    } else if !args.hosts.is_empty() {
        return Err("--hosts without --shard k/m".into());
    }
    Ok(args)
}

fn node_config(n: usize, gossip: bool) -> Result<NodeConfig, Box<dyn std::error::Error>> {
    let mut builder = NodeConfig::builder();
    builder
        .gamma(10)
        .cycle_length(50) // δ = 50 ms
        .timeout(20)
        .instance(InstanceSpec::AVERAGE)
        .initial_size_guess(n as f64);
    if !gossip {
        // COUNT leaders are elected per epoch; keep the demo focused on
        // AVERAGE when membership itself is still bootstrapping.
        builder.instance(InstanceSpec::CountMap {
            leader: LeaderPolicy::Probability { concurrency: 8.0 },
        });
    }
    Ok(builder.build()?)
}

fn directory_spec(gossip: bool) -> DirectorySpec {
    if gossip {
        // Vnode 0 is the introducer; everyone else bootstraps over the
        // wire — no static peer table anywhere.
        DirectorySpec::Gossip(GossipDirectoryConfig::new(20, 40).with_introducer_node(0))
    } else {
        DirectorySpec::Static
    }
}

/// Harvests every local node's latest report and prints shard-level
/// aggregate estimates. Returns the mean AVERAGE estimate, if any.
fn report(label: &str, cluster: &MuxCluster, truth_avg: f64, n: usize) -> Option<f64> {
    let reports = cluster.take_all_reports();
    let totals = cluster.total_datagram_counts();
    let mut epochs_seen = 0usize;
    let mut avg_sum = 0.0;
    let mut avg_count = 0usize;
    let mut size_sum = 0.0;
    let mut size_count = 0usize;
    for node_reports in &reports {
        epochs_seen += node_reports.len();
        if let Some(last) = node_reports.last() {
            if let Some(avg) = last.scalar(0) {
                avg_sum += avg;
                avg_count += 1;
            }
            if let Some(size) = last.count_estimate() {
                size_sum += size;
                size_count += 1;
            }
        }
    }
    println!(
        "{label}: {epochs_seen} epoch reports from {avg_count} of {} local nodes; \
         {} datagrams in / {} out \
         (membership: {} in / {} out, byte overhead {:.3})",
        cluster.len(),
        totals.received(),
        totals.sent(),
        totals.membership_received,
        totals.membership_sent,
        totals.membership_byte_overhead(),
    );
    let mean = (avg_count > 0).then(|| avg_sum / avg_count as f64);
    if let Some(mean) = mean {
        println!("{label}: mean AVERAGE estimate {mean:.3} (truth {truth_avg})");
    }
    if size_count > 0 {
        println!(
            "{label}: mean COUNT estimate {:.1} (truth {n})",
            size_sum / size_count as f64
        );
    }
    mean
}

/// `--smoke`: a small 2-shard cluster over loopback in one process; used
/// by CI to keep the cross-socket sharding path from rotting. Exits with
/// an error if the shards fail to converge.
fn run_smoke() -> Result<(), Box<dyn std::error::Error>> {
    let n = 64usize;
    let truth = (n as f64 + 1.0) / 2.0; // values 1..=n
    let config = node_config(n, false)?;
    let table = PeerTable::loopback_split(n, 2)?;
    println!(
        "smoke: {n} vnodes over 2 loopback shards ({} and {})",
        table.shard_addr(0),
        table.shard_addr(1)
    );
    let shards = [
        MuxCluster::spawn(
            MuxClusterConfig::sharded(table.clone(), 0, config.clone()).with_workers(2),
            |i| (i + 1) as f64,
        )?,
        MuxCluster::spawn(
            MuxClusterConfig::sharded(table, 1, config).with_workers(2),
            |i| (i + 1) as f64,
        )?,
    ];
    std::thread::sleep(Duration::from_millis(2_000));
    let mut ok = true;
    for (s, shard) in shards.iter().enumerate() {
        match report(&format!("shard {s}"), shard, truth, n) {
            Some(mean) if (mean - truth).abs() < truth * 0.05 => {}
            Some(mean) => {
                eprintln!("shard {s}: mean {mean} too far from truth {truth}");
                ok = false;
            }
            None => {
                eprintln!("shard {s}: no epoch reports");
                ok = false;
            }
        }
        let counts = shard.total_datagram_counts();
        if counts.sent() == 0 || counts.received() == 0 {
            eprintln!("shard {s}: no datagrams moved");
            ok = false;
        }
    }
    for shard in shards {
        shard.shutdown();
    }
    if !ok {
        return Err("smoke run failed to converge".into());
    }
    println!("smoke: both shards converged");
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = parse_args().map_err(|e| -> Box<dyn std::error::Error> { e.into() })?;
    if args.smoke {
        return run_smoke();
    }

    let config = node_config(args.n, args.gossip)?;
    let directory = directory_spec(args.gossip);
    let truth = (args.n as f64 + 1.0) / 2.0; // values 1..=n
    let started = Instant::now();
    let cluster = match args.shard {
        None => {
            println!(
                "spawning {} virtual gossip nodes behind one UDP socket...",
                args.n
            );
            MuxCluster::spawn(
                MuxClusterConfig::new(args.n, config)
                    .with_workers(args.workers)
                    .with_seed(args.seed)
                    .with_directory(directory),
                |i| (i + 1) as f64,
            )?
        }
        Some((k, m)) => {
            let table = PeerTable::split(args.n, args.hosts.clone());
            println!(
                "spawning shard {k}/{m}: vnodes {:?} on {}...",
                table.shard_range(k),
                table.shard_addr(k)
            );
            MuxCluster::spawn(
                MuxClusterConfig::sharded(table, k, config)
                    .with_workers(args.workers)
                    .with_seed(args.seed)
                    .with_directory(directory),
                |i| (i + 1) as f64,
            )?
        }
    };
    println!(
        "up in {:?}: socket {}, {} OS threads hosting {} of {} vnodes{}",
        started.elapsed(),
        cluster.addr(),
        cluster.thread_count(),
        cluster.len(),
        cluster.total_len(),
        if args.gossip {
            " (NEWSCAST membership, introducer vnode 0)"
        } else {
            " (static directory)"
        },
    );

    std::thread::sleep(Duration::from_secs(args.secs.max(1)));
    report("cluster", &cluster, truth, args.n);
    cluster.shutdown();
    Ok(())
}
