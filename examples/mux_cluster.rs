//! A thousand-node gossip cluster over real UDP — in one process.
//!
//! The `udp_cluster` example runs the paper's Figure 1 literally: one OS
//! thread per node. This example runs the same protocol at a scale that
//! architecture cannot reach on a laptop: 1024 virtual nodes multiplexed
//! behind ONE socket and `workers + 2` OS threads (`net::mux`). Every
//! exchange still crosses the kernel's UDP stack; only the per-node
//! thread and socket are gone.
//!
//! Run with: `cargo run --release --example mux_cluster`

use epidemic::aggregation::{InstanceSpec, LeaderPolicy, NodeConfig};
use epidemic::net::mux::{MuxCluster, MuxClusterConfig};
use std::time::{Duration, Instant};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 1024usize;
    let workers = 4usize;
    let node_config = NodeConfig::builder()
        .gamma(10)
        .cycle_length(50) // δ = 50 ms
        .timeout(20)
        .instance(InstanceSpec::AVERAGE)
        .instance(InstanceSpec::CountMap {
            leader: LeaderPolicy::Probability { concurrency: 8.0 },
        })
        .initial_size_guess(n as f64)
        .build()?;

    println!("spawning {n} virtual gossip nodes behind one UDP socket...");
    let started = Instant::now();
    // Local values 1..=1024: true average 512.5.
    let cluster = MuxCluster::spawn(
        MuxClusterConfig::new(n, node_config).with_workers(workers),
        |i| (i + 1) as f64,
    )?;
    println!(
        "up in {:?}: socket {}, {} OS threads (vs {n} for thread-per-node)",
        started.elapsed(),
        cluster.addr(),
        cluster.thread_count(),
    );

    std::thread::sleep(Duration::from_millis(2_500));

    let reports = cluster.take_all_reports();
    let (rx, tx) = cluster.datagram_counts();
    let mut epochs_seen = 0usize;
    let mut avg_sum = 0.0;
    let mut avg_count = 0usize;
    let mut size_sum = 0.0;
    let mut size_count = 0usize;
    for node_reports in &reports {
        epochs_seen += node_reports.len();
        if let Some(last) = node_reports.last() {
            if let Some(avg) = last.scalar(0) {
                avg_sum += avg;
                avg_count += 1;
            }
            if let Some(size) = last.count_estimate() {
                size_sum += size;
                size_count += 1;
            }
        }
    }
    println!("{epochs_seen} epoch reports from {avg_count} nodes; {rx} datagrams in / {tx} out");
    if avg_count > 0 {
        println!(
            "mean AVERAGE estimate {:.3} (truth 512.5)",
            avg_sum / avg_count as f64
        );
    }
    if size_count > 0 {
        println!(
            "mean COUNT estimate {:.1} (truth {n})",
            size_sum / size_count as f64
        );
    }
    cluster.shutdown();
    Ok(())
}
