//! A thousand-node gossip cluster over real UDP — in one process, or
//! sharded across processes and hosts.
//!
//! The `udp_cluster` example runs the paper's Figure 1 literally: one OS
//! thread per node. This example runs the same protocol at a scale that
//! architecture cannot reach on a laptop: 1024 virtual nodes (or far
//! more — see `--n`) multiplexed behind a small reader socket set and
//! `workers + readers + 1` OS threads (`net::mux`), with
//! `recvmmsg`/`sendmmsg` syscall batching on Linux. Every exchange still
//! crosses the kernel's UDP stack; only the per-node thread and socket
//! are gone.
//!
//! The mux wire frame routes by cluster-wide virtual-node id, so the
//! same cluster can be sharded over multiple sockets, processes, or
//! hosts through a `PeerTable`:
//!
//! ```text
//! # one process, 1024 vnodes (the default)
//! cargo run --release --example mux_cluster
//!
//! # four reader sockets, forced portable (one-syscall-per-datagram) I/O
//! cargo run --release --example mux_cluster -- --readers 4 --io portable
//!
//! # 100k vnodes: slow the cycle down and keep the protocol AVERAGE-only
//! cargo run --release --example mux_cluster -- \
//!     --n 100000 --readers 4 --cycle-ms 2000 --gamma 10 --average --secs 30
//!
//! # the same cluster split across two processes / hosts: run one shard
//! # per process, all with the same --hosts list (shard order)
//! cargo run --release --example mux_cluster -- --hosts 10.0.0.1:7000,10.0.0.2:7000 --shard 0/2
//! cargo run --release --example mux_cluster -- --hosts 10.0.0.1:7000,10.0.0.2:7000 --shard 1/2
//!
//! # NEWSCAST membership instead of the static table (vnode 0 introduces)
//! cargo run --release --example mux_cluster -- --gossip
//!
//! # CI smoke: a small 2-shard cluster over loopback in one process
//! # (combines with --readers / --io to smoke those paths)
//! cargo run --release --example mux_cluster -- --smoke
//! ```

use epidemic::aggregation::{InstanceSpec, LeaderPolicy, NodeConfig};
use epidemic::net::batch::IoBackend;
use epidemic::net::cluster::Cluster;
use epidemic::net::directory::{DirectorySpec, GossipDirectoryConfig};
use epidemic::net::mux::{MuxCluster, MuxClusterConfig, PeerTable};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

#[derive(Debug)]
struct Args {
    n: usize,
    workers: Option<usize>,
    readers: Option<usize>,
    io: Option<IoBackend>,
    cycle_ms: u64,
    gamma: u32,
    average: bool,
    seed: u64,
    secs: u64,
    gossip: bool,
    smoke: bool,
    hosts: Vec<SocketAddr>,
    shard: Option<(usize, usize)>, // (k, m): this process is shard k of m
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        n: 1024,
        workers: None,
        readers: None,
        io: None,
        cycle_ms: 50,
        gamma: 10,
        average: false,
        seed: 0xC0FFEE,
        secs: 3,
        gossip: false,
        smoke: false,
        hosts: Vec::new(),
        shard: None,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match flag.as_str() {
            "--n" => args.n = value("--n")?.parse().map_err(|e| format!("--n: {e}"))?,
            "--workers" => {
                args.workers = Some(
                    value("--workers")?
                        .parse()
                        .map_err(|e| format!("--workers: {e}"))?,
                )
            }
            "--readers" => {
                args.readers = Some(
                    value("--readers")?
                        .parse()
                        .map_err(|e| format!("--readers: {e}"))?,
                )
            }
            "--io" => {
                let spec = value("--io")?;
                args.io = Some(
                    IoBackend::from_override(&spec)
                        .ok_or_else(|| format!("--io wants batched|portable, got {spec}"))?,
                );
            }
            "--cycle-ms" => {
                args.cycle_ms = value("--cycle-ms")?
                    .parse()
                    .map_err(|e| format!("--cycle-ms: {e}"))?
            }
            "--gamma" => {
                args.gamma = value("--gamma")?
                    .parse()
                    .map_err(|e| format!("--gamma: {e}"))?
            }
            "--average" => args.average = true,
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--secs" => {
                args.secs = value("--secs")?
                    .parse()
                    .map_err(|e| format!("--secs: {e}"))?
            }
            "--gossip" => args.gossip = true,
            "--smoke" => args.smoke = true,
            "--hosts" => {
                for host in value("--hosts")?.split(',') {
                    args.hosts
                        .push(host.parse().map_err(|e| format!("--hosts {host}: {e}"))?);
                }
            }
            "--shard" => {
                let spec = value("--shard")?;
                let (k, m) = spec
                    .split_once('/')
                    .ok_or_else(|| format!("--shard wants k/m, got {spec}"))?;
                let k = k.parse().map_err(|e| format!("--shard: {e}"))?;
                let m = m.parse().map_err(|e| format!("--shard: {e}"))?;
                args.shard = Some((k, m));
            }
            other => return Err(format!("unknown flag {other} (see the example header)")),
        }
    }
    if let Some((k, m)) = args.shard {
        if args.hosts.len() != m {
            return Err(format!(
                "--shard {k}/{m} needs exactly {m} --hosts entries, got {}",
                args.hosts.len()
            ));
        }
        if k >= m {
            return Err(format!("--shard {k}/{m}: shard index out of range"));
        }
    } else if !args.hosts.is_empty() {
        return Err("--hosts without --shard k/m".into());
    }
    Ok(args)
}

fn node_config(args: &Args) -> Result<NodeConfig, Box<dyn std::error::Error>> {
    let mut builder = NodeConfig::builder();
    builder
        .gamma(args.gamma)
        .cycle_length(args.cycle_ms) // δ
        .timeout((args.cycle_ms * 2 / 5).max(1))
        .instance(InstanceSpec::AVERAGE)
        .initial_size_guess(args.n as f64);
    if !args.gossip && !args.average {
        // COUNT leaders are elected per epoch; keep the demo focused on
        // AVERAGE when membership itself is still bootstrapping — and
        // when --average asks for the cheapest possible protocol (the
        // 10^5-vnode runs).
        builder.instance(InstanceSpec::CountMap {
            leader: LeaderPolicy::Probability { concurrency: 8.0 },
        });
    }
    Ok(builder.build()?)
}

/// Applies the I/O-layout flags (`--workers`, `--readers`, `--io`) to a
/// cluster config; unset flags keep the core-aware spawn defaults.
fn with_io_layout(mut config: MuxClusterConfig, args: &Args) -> MuxClusterConfig {
    if let Some(workers) = args.workers {
        config = config.with_workers(workers);
    }
    if let Some(readers) = args.readers {
        config = config.with_readers(readers);
    }
    if let Some(io) = args.io {
        config = config.with_io(io);
    }
    config
}

fn directory_spec(gossip: bool) -> DirectorySpec {
    if gossip {
        // Vnode 0 is the introducer; everyone else bootstraps over the
        // wire — no static peer table anywhere.
        DirectorySpec::Gossip(GossipDirectoryConfig::new(20, 40).with_introducer_node(0))
    } else {
        DirectorySpec::Static
    }
}

/// Harvests every local node's latest report and prints shard-level
/// aggregate estimates. Returns the mean AVERAGE estimate, if any.
fn report(label: &str, cluster: &MuxCluster, truth_avg: f64, n: usize) -> Option<f64> {
    let reports = cluster.take_all_reports();
    let totals = cluster.total_datagram_counts();
    let mut epochs_seen = 0usize;
    let mut avg_sum = 0.0;
    let mut avg_count = 0usize;
    let mut size_sum = 0.0;
    let mut size_count = 0usize;
    for node_reports in &reports {
        epochs_seen += node_reports.len();
        if let Some(last) = node_reports.last() {
            if let Some(avg) = last.scalar(0) {
                avg_sum += avg;
                avg_count += 1;
            }
            if let Some(size) = last.count_estimate() {
                size_sum += size;
                size_count += 1;
            }
        }
    }
    println!(
        "{label}: {epochs_seen} epoch reports from {avg_count} of {} local nodes; \
         {} datagrams in / {} out, {} send errors \
         (membership: {} in / {} out, byte overhead {:.3})",
        cluster.len(),
        totals.received(),
        totals.sent(),
        totals.send_errors,
        totals.membership_received,
        totals.membership_sent,
        totals.membership_byte_overhead(),
    );
    let syscalls = cluster.syscall_counts();
    let moved = totals.received() + totals.sent();
    if moved > 0 {
        println!(
            "{label}: {} recv + {} send syscalls for {moved} datagrams \
             ({:.3} syscalls/datagram, {:?} backend, {} readers)",
            syscalls.recv_calls,
            syscalls.send_calls,
            (syscalls.recv_calls + syscalls.send_calls) as f64 / moved as f64,
            cluster.io_backend(),
            cluster.reader_count(),
        );
    }
    let mean = (avg_count > 0).then(|| avg_sum / avg_count as f64);
    if let Some(mean) = mean {
        println!("{label}: mean AVERAGE estimate {mean:.3} (truth {truth_avg})");
    }
    if size_count > 0 {
        println!(
            "{label}: mean COUNT estimate {:.1} (truth {n})",
            size_sum / size_count as f64
        );
    }
    mean
}

/// `--smoke`: a small 2-shard cluster over loopback in one process; used
/// by CI to keep the cross-socket sharding path from rotting (combined
/// with `--readers` / `--io` it smokes the multi-reader socket set and
/// the portable fallback too, and with `--gossip` the cross-shard
/// join/delta-view/piggyback path). Exits with an error if the shards
/// fail to converge.
fn run_smoke(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let smoke_args = Args {
        n: 64,
        workers: Some(args.workers.unwrap_or(2)),
        readers: args.readers,
        io: args.io,
        cycle_ms: args.cycle_ms,
        gamma: args.gamma,
        average: args.average,
        seed: args.seed,
        secs: args.secs,
        gossip: args.gossip,
        smoke: true,
        hosts: Vec::new(),
        shard: None,
    };
    let n = smoke_args.n;
    let truth = (n as f64 + 1.0) / 2.0; // values 1..=n
    let config = node_config(&smoke_args)?;
    let table = PeerTable::loopback_split(n, 2)?;
    println!(
        "smoke: {n} vnodes over 2 loopback shards ({} and {})",
        table.shard_addr(0),
        table.shard_addr(1)
    );
    let shards = [
        MuxCluster::spawn(
            with_io_layout(
                MuxClusterConfig::sharded(table.clone(), 0, config.clone())
                    .with_directory(directory_spec(smoke_args.gossip)),
                &smoke_args,
            ),
            |i| (i + 1) as f64,
        )?,
        MuxCluster::spawn(
            with_io_layout(
                MuxClusterConfig::sharded(table, 1, config)
                    .with_directory(directory_spec(smoke_args.gossip)),
                &smoke_args,
            ),
            |i| (i + 1) as f64,
        )?,
    ];
    println!(
        "smoke: {} readers per shard, {:?} backend",
        shards[0].reader_count(),
        shards[0].io_backend()
    );
    std::thread::sleep(Duration::from_millis(2_000));
    let mut ok = true;
    for (s, shard) in shards.iter().enumerate() {
        match report(&format!("shard {s}"), shard, truth, n) {
            Some(mean) if (mean - truth).abs() < truth * 0.05 => {}
            Some(mean) => {
                eprintln!("shard {s}: mean {mean} too far from truth {truth}");
                ok = false;
            }
            None => {
                eprintln!("shard {s}: no epoch reports");
                ok = false;
            }
        }
        let counts = shard.total_datagram_counts();
        if counts.sent() == 0 || counts.received() == 0 {
            eprintln!("shard {s}: no datagrams moved");
            ok = false;
        }
    }
    for shard in shards {
        shard.shutdown();
    }
    if !ok {
        return Err("smoke run failed to converge".into());
    }
    println!("smoke: both shards converged");
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = parse_args().map_err(|e| -> Box<dyn std::error::Error> { e.into() })?;
    if args.smoke {
        return run_smoke(&args);
    }

    let config = node_config(&args)?;
    let directory = directory_spec(args.gossip);
    let truth = (args.n as f64 + 1.0) / 2.0; // values 1..=n
    let started = Instant::now();
    let cluster = match args.shard {
        None => {
            println!(
                "spawning {} virtual gossip nodes behind a reader socket set...",
                args.n
            );
            MuxCluster::spawn(
                with_io_layout(
                    MuxClusterConfig::new(args.n, config)
                        .with_seed(args.seed)
                        .with_directory(directory),
                    &args,
                ),
                |i| (i + 1) as f64,
            )?
        }
        Some((k, m)) => {
            let table = PeerTable::split(args.n, args.hosts.clone());
            println!(
                "spawning shard {k}/{m}: vnodes {:?} on {}...",
                table.shard_range(k),
                table.shard_addr(k)
            );
            MuxCluster::spawn(
                with_io_layout(
                    MuxClusterConfig::sharded(table, k, config)
                        .with_seed(args.seed)
                        .with_directory(directory),
                    &args,
                ),
                |i| (i + 1) as f64,
            )?
        }
    };
    println!(
        "up in {:?}: socket {}, {} OS threads ({} readers, {:?} backend) \
         hosting {} of {} vnodes{}",
        started.elapsed(),
        cluster.addr(),
        cluster.thread_count(),
        cluster.reader_count(),
        cluster.io_backend(),
        cluster.len(),
        cluster.total_len(),
        if args.gossip {
            " (NEWSCAST membership, introducer vnode 0)"
        } else {
            " (static directory)"
        },
    );

    std::thread::sleep(Duration::from_secs(args.secs.max(1)));
    report("cluster", &cluster, truth, args.n);
    cluster.shutdown();
    Ok(())
}
