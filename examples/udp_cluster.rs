//! A real gossip cluster over UDP on localhost.
//!
//! Spawns twelve OS processes' worth of protocol — one thread per node —
//! each running the active/passive loops of the paper's Figure 1 over real
//! datagrams, operated through the runtime-agnostic `Cluster` seam. The
//! nodes aggregate AVERAGE and COUNT simultaneously; after a few
//! wall-clock epochs every node reports both the average of the local
//! values and the cluster size, computed purely by gossip.
//!
//! Run with: `cargo run --release --example udp_cluster`

use epidemic::aggregation::{InstanceSpec, LeaderPolicy, NodeConfig};
use epidemic::net::cluster::Cluster;
use epidemic::net::runtime::{ClusterConfig, ThreadCluster};
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 12usize;
    let node_config = NodeConfig::builder()
        .gamma(12)
        .cycle_length(40) // δ = 40 ms
        .timeout(15)
        .instance(InstanceSpec::AVERAGE)
        .instance(InstanceSpec::CountMap {
            leader: LeaderPolicy::Probability { concurrency: 4.0 },
        })
        .initial_size_guess(n as f64)
        .build()?;

    println!("spawning {n} UDP gossip nodes on localhost...");
    // Local values 10, 20, ..., 120: true average 65.
    let cluster = ThreadCluster::spawn(ClusterConfig::loopback(n, node_config)?, |i| {
        (i + 1) as f64 * 10.0
    })?;

    std::thread::sleep(Duration::from_millis(2_500));

    let mut epochs_seen = 0;
    for i in 0..cluster.node_count() {
        let reports = cluster.take_reports(i);
        let Some(last) = reports.last() else { continue };
        epochs_seen += reports.len();
        let avg = last.scalar(0).unwrap_or(f64::NAN);
        let size = last
            .count_estimate()
            .map_or("n/a".to_string(), |s| format!("{s:.1}"));
        let counts = cluster.datagram_counts(i);
        println!(
            "node {i:>2}: epoch {:>2} -> average {avg:>7.3} (truth 65), size {size} \
             (truth {n}), {} in / {} out datagrams",
            last.epoch,
            counts.received(),
            counts.sent(),
        );
    }
    println!("\n{epochs_seen} epoch reports collected; shutting down");
    cluster.shutdown();
    Ok(())
}
