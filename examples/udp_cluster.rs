//! A real gossip cluster over UDP on localhost.
//!
//! Spawns twelve OS processes' worth of protocol — one thread per node —
//! each running the active/passive loops of the paper's Figure 1 over real
//! datagrams. The nodes aggregate AVERAGE and COUNT simultaneously; after
//! a few wall-clock epochs every node reports both the average of the
//! local values and the cluster size, computed purely by gossip.
//!
//! Run with: `cargo run --release --example udp_cluster`

use epidemic::aggregation::{InstanceSpec, LeaderPolicy, NodeConfig};
use epidemic::net::runtime::{ClusterConfig, UdpNode};
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 12usize;
    let node_config = NodeConfig::builder()
        .gamma(12)
        .cycle_length(40) // δ = 40 ms
        .timeout(15)
        .instance(InstanceSpec::AVERAGE)
        .instance(InstanceSpec::CountMap {
            leader: LeaderPolicy::Probability { concurrency: 4.0 },
        })
        .initial_size_guess(n as f64)
        .build()?;
    let cluster = ClusterConfig::loopback(n, node_config)?;

    println!("spawning {n} UDP gossip nodes on localhost...");
    let mut nodes: Vec<UdpNode> = Vec::with_capacity(n);
    for i in 0..n {
        // Local values 10, 20, ..., 120: true average 65.
        nodes.push(UdpNode::spawn(cluster.node(i, (i + 1) as f64 * 10.0))?);
    }

    std::thread::sleep(Duration::from_millis(2_500));

    let mut epochs_seen = 0;
    for (i, node) in nodes.iter().enumerate() {
        let reports = node.take_reports();
        let Some(last) = reports.last() else { continue };
        epochs_seen += reports.len();
        let avg = last.scalar(0).unwrap_or(f64::NAN);
        let size = last
            .count_estimate()
            .map_or("n/a".to_string(), |s| format!("{s:.1}"));
        let (rx, tx) = node.datagram_counts();
        println!(
            "node {i:>2}: epoch {:>2} -> average {avg:>7.3} (truth 65), size {size} \
             (truth {n}), {rx} in / {tx} out datagrams",
            last.epoch
        );
    }
    println!("\n{epochs_seen} epoch reports collected; shutting down");
    for node in nodes {
        node.shutdown();
    }
    Ok(())
}
