//! Proactive network-size monitoring under churn.
//!
//! The motivating scenario of the paper's COUNT protocol: a P2P network
//! whose size changes over time, with every node continuously holding an
//! up-to-date size estimate. Each epoch runs the multi-leader COUNT
//! protocol (leaders self-elect with probability `C/N̂`) for 30 cycles over
//! a NEWSCAST overlay while nodes churn; the epoch output feeds the next
//! epoch's leader election — the protocol is self-calibrating.
//!
//! Run with: `cargo run --release --example network_monitor`

use epidemic::common::rng::Xoshiro256;
use epidemic::common::stats;
use epidemic::newscast::Overlay;
use epidemic::sim::network::{CycleOptions, Network};

fn main() {
    let mut rng = Xoshiro256::seed_from_u64(7);
    let initial = 2_000usize;
    let gamma = 30u32;
    let concurrency = 20.0; // desired concurrent COUNT instances

    let mut overlay = Overlay::random_init(initial, 30, &mut rng);
    let mut net = Network::new(initial);
    let field = net.add_map_field(&[]);
    let mut clock = 0u32;
    let mut size_estimate: f64 = 64.0; // deliberately poor initial guess

    println!("epoch | true size | estimated size | error | leaders");
    println!("------+-----------+----------------+-------+--------");
    // Phase plan: grow by 40/cycle for 3 epochs, then shrink by 50/cycle.
    for epoch in 0..8 {
        // Epoch start: everyone participates; leaders self-elect.
        net.admit_all();
        let p_lead = (concurrency / size_estimate).clamp(0.0, 1.0);
        let leaders: Vec<usize> = (0..net.slot_count())
            .filter(|&i| net.is_alive(i) && rng.next_bool(p_lead))
            .collect();
        net.reset_map_field(field, &leaders);

        for _ in 0..gamma {
            // Churn: joins in growth phases, crashes in shrink phases.
            let (joins, crashes) = if epoch < 3 { (40, 0) } else { (0, 50) };
            for _ in 0..joins {
                let introducer = loop {
                    let cand = rng.index(overlay.slot_count());
                    if overlay.is_alive(cand) {
                        break cand;
                    }
                };
                let idx = net.add_node();
                let joined = overlay.join_via(introducer, clock);
                assert_eq!(idx, joined);
            }
            let mut crashed = 0;
            while crashed < crashes && net.alive_count() > 100 {
                let cand = rng.index(net.slot_count());
                if net.is_alive(cand) {
                    net.crash(cand);
                    overlay.crash(cand);
                    crashed += 1;
                }
            }
            clock += 1;
            overlay.run_cycle(clock, &mut rng);
            net.run_cycle(&overlay, CycleOptions::default(), &mut rng);
        }

        let estimates = net.count_estimates(field);
        let finite: Vec<f64> = estimates.into_iter().filter(|e| e.is_finite()).collect();
        let estimate = stats::mean(&finite);
        size_estimate = estimate.max(2.0);
        let truth = net.alive_count();
        println!(
            "{epoch:>5} | {truth:>9} | {estimate:>14.1} | {err:>4.1}% | {leaders}",
            err = 100.0 * (estimate - truth as f64).abs() / truth as f64,
            leaders = leaders.len(),
        );
    }
    println!("\n(the estimate lags the true size by one epoch: each epoch reports");
    println!(" the size at its start, exactly as the protocol specifies)");
}
