//! Quickstart: estimate a global average over a dynamic overlay.
//!
//! One thousand nodes each hold a private value; NEWSCAST maintains the
//! overlay and the push-pull averaging protocol converges every node's
//! estimate onto the global mean in ~30 cycles — without any coordinator.
//!
//! Run with: `cargo run --release --example quickstart`

use epidemic::sim::experiment::{AggregateSetup, ExperimentConfig};
use epidemic::sim::scenario::{OverlaySpec, Scenario, ValueInit};

fn main() {
    let n = 1_000;
    let config = ExperimentConfig {
        scenario: Scenario {
            n,
            overlay: OverlaySpec::Newscast { c: 30 },
            values: ValueInit::Uniform { lo: 0.0, hi: 100.0 },
            ..Scenario::default()
        },
        cycles: 30,
        aggregate: AggregateSetup::Average,
    };
    let outcome = config.run(42);

    println!("push-pull AVERAGE over a {n}-node NEWSCAST overlay (c = 30)\n");
    println!(
        "{:>5}  {:>14}  {:>14}  {:>14}",
        "cycle", "min estimate", "max estimate", "variance"
    );
    for cycle in [0usize, 1, 2, 3, 5, 10, 15, 20, 25, 30] {
        println!(
            "{:>5}  {:>14.6}  {:>14.6}  {:>14.3e}",
            cycle, outcome.min[cycle], outcome.max[cycle], outcome.variance[cycle]
        );
    }
    let estimate = outcome.mean_final_estimate();
    println!("\nevery node now estimates the global average as ~{estimate:.4}");
    println!(
        "measured convergence factor: {:.4} (theory for random overlays: {:.4})",
        outcome.convergence_factor(20),
        epidemic::aggregation::theory::RHO_PUSH_PULL
    );
}
