//! Gossip-driven load balancing.
//!
//! The paper's introduction motivates aggregation with load balancing:
//! once every node knows the *global average load*, each node can decide
//! locally how much work to shed or accept, and stop transferring exactly
//! when it reaches the average — no coordinator, no global view.
//!
//! This example runs the averaging protocol to convergence, then lets
//! overloaded nodes shed work to underloaded neighbors in proportion to
//! their distance from the learned average.
//!
//! Run with: `cargo run --release --example load_balancing`

use epidemic::common::rng::Xoshiro256;
use epidemic::common::stats::OnlineStats;
use epidemic::sim::experiment::{AggregateSetup, ExperimentConfig};
use epidemic::sim::scenario::{OverlaySpec, Scenario, ValueInit};

fn main() {
    let n = 5_000;
    let mut rng = Xoshiro256::seed_from_u64(99);

    // A heavily skewed initial load: a few hotspots carry most the work.
    let loads: Vec<f64> = (0..n)
        .map(|_| {
            if rng.next_bool(0.02) {
                400.0 + rng.next_f64() * 600.0 // hotspot
            } else {
                rng.next_f64() * 20.0
            }
        })
        .collect();
    let before: OnlineStats = loads.iter().copied().collect();
    println!(
        "initial load: mean {:.2}, max {:.2}",
        before.mean(),
        before.max()
    );

    // Step 1: learn the global average by gossip. (Each node only ever
    // sees its own exchanges; after 30 cycles all estimates agree.)
    let total: f64 = loads.iter().sum();
    let config = ExperimentConfig {
        scenario: Scenario {
            n,
            overlay: OverlaySpec::Newscast { c: 30 },
            values: ValueInit::Peak { total }, // same sum, harder distribution
            ..Scenario::default()
        },
        cycles: 30,
        aggregate: AggregateSetup::Average,
    };
    let outcome = config.run(1);
    let learned_avg = outcome.mean_final_estimate();
    println!(
        "gossip-learned average load: {:.4} (truth {:.4})",
        learned_avg,
        total / n as f64
    );

    // Step 2: local decisions. Every node knows `learned_avg`; overloaded
    // nodes shed the surplus in capped chunks to random peers that still
    // have headroom — the classic diffusion scheme, terminated by the
    // aggregate knowledge instead of by a coordinator.
    let mut current = loads;
    let chunk = 50.0;
    for _round in 0..1_000 {
        let mut moved = false;
        for i in 0..n {
            let surplus = current[i] - learned_avg;
            if surplus <= 0.5 {
                continue;
            }
            let peer = rng.index(n);
            if current[peer] < learned_avg {
                let transfer = surplus.min(chunk).min(learned_avg - current[peer]);
                current[i] -= transfer;
                current[peer] += transfer;
                moved = true;
            }
        }
        if !moved {
            break;
        }
    }
    let after: OnlineStats = current.iter().copied().collect();
    println!(
        "after balancing: mean {:.2}, max {:.2} (max/avg ratio {:.2} -> {:.2})",
        after.mean(),
        after.max(),
        before.max() / before.mean(),
        after.max() / after.mean()
    );
    assert!((after.mean() - before.mean()).abs() < 1e-6, "load leaked");
}
