//! The full aggregate catalogue of the paper's Section 5, side by side.
//!
//! Runs one epoch per aggregate over the same 1500-node NEWSCAST overlay
//! population and compares every gossip estimate against the exact value
//! computed centrally — demonstrating that AVERAGE, MIN, MAX, COUNT, SUM,
//! VARIANCE, GEOMETRIC MEAN and PRODUCT are all the same protocol with
//! different update functions and compositions.
//!
//! Run with: `cargo run --release --example aggregate_catalog`

use epidemic::aggregation::AggregateKind;
use epidemic::sim::failure::{CommFailure, FailureModel};
use epidemic::sim::session::{Session, SessionConfig};

fn main() {
    let n = 1_500;
    println!("aggregate       |   gossip estimate |       exact value | rel. error");
    println!("----------------+-------------------+-------------------+-----------");
    for kind in AggregateKind::ALL {
        let mut session = Session::new(
            SessionConfig {
                n,
                view_size: 30,
                gamma: 30,
                aggregate: kind,
                count_concurrency: 15.0,
                joiner_value: 1.0,
            },
            // Positive values so the geometric family is defined. PRODUCT
            // gets values near 1 — the product of 1500 values only fits in
            // an f64 when the geometric mean is close to 1 (a real
            // deployment would report the log-product instead).
            move |i| {
                if kind == AggregateKind::Product {
                    1.0 + (i % 100) as f64 / 10_000.0
                } else {
                    1.0 + (i % 100) as f64 / 50.0
                }
            },
            7,
        );
        // One warm-up epoch calibrates the size estimate for the
        // composed aggregates (SUM, PRODUCT), then measure.
        session.run_epoch(FailureModel::None, CommFailure::NONE);
        let outcome = session.run_epoch(FailureModel::None, CommFailure::NONE);
        let estimate = outcome.mean_estimate().unwrap_or(f64::NAN);
        let exact = session.ground_truth().unwrap_or(f64::NAN);
        let rel = ((estimate - exact) / exact).abs();
        println!(
            "{:<15} | {:>17.6} | {:>17.6} | {:>8.4}%",
            kind.to_string(),
            estimate,
            exact,
            rel * 100.0
        );
    }
    println!("\n(each line = a fresh pair of epochs over the same population;");
    println!(" every node ends the epoch holding the printed estimate locally)");
}
