//! Epidemic — robust gossip aggregation for large-scale overlay networks.
//!
//! A from-scratch, production-quality Rust reproduction of
//! *Montresor, Jelasity, Babaoglu: "Robust Aggregation Protocols for
//! Large-Scale Overlay Networks" (DSN 2004)*, packaged as one façade crate
//! over a workspace of focused libraries:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`aggregation`] | `epidemic-aggregation` | the paper's contribution: push-pull averaging, COUNT/SUM/PRODUCT/VARIANCE, epochs, epoch synchronization, crash/link-failure theory |
//! | [`query`] | `epidemic-query` | multi-tenant query plane: named query catalog, per-query epoch schedules, client RPC vocabulary, token-bucket admission |
//! | [`newscast`] | `epidemic-newscast` | the NEWSCAST gossip membership protocol |
//! | [`topology`] | `epidemic-topology` | static overlay generators and graph analysis |
//! | [`sim`] | `epidemic-sim` | cycle-driven and event-driven simulators with failure injection |
//! | [`net`] | `epidemic-net` | real-network layer: the `Cluster` operator seam, the `PeerDirectory` membership seam (static or NEWSCAST-gossiped), thread-per-node + multiplexed/sharded UDP runtimes, binary wire codec |
//! | [`common`] | `epidemic-common` | node ids, deterministic RNG, statistics |
//!
//! # Quickstart
//!
//! Estimate the average of values scattered over a 1000-node dynamic
//! overlay:
//!
//! ```
//! use epidemic::sim::experiment::{AggregateSetup, ExperimentConfig};
//! use epidemic::sim::scenario::{OverlaySpec, Scenario, ValueInit};
//!
//! let config = ExperimentConfig {
//!     scenario: Scenario {
//!         n: 1_000,
//!         overlay: OverlaySpec::Newscast { c: 30 },
//!         values: ValueInit::Uniform { lo: 0.0, hi: 10.0 },
//!         ..Scenario::default()
//!     },
//!     cycles: 30,
//!     aggregate: AggregateSetup::Average,
//! };
//! let outcome = config.run(1);
//! let estimate = outcome.mean_final_estimate();
//! assert!((estimate - 5.0).abs() < 0.5); // true mean of U[0,10) is 5
//! ```
//!
//! The [`sim::Scenario`] describing the conditions — overlay, value
//! distribution, failures — is engine-independent: the same value also
//! drives the event-driven simulator ([`sim::EventConfig`]) under message
//! delay, clock drift, and loss.
//!
//! See the `examples/` directory for runnable scenarios: a quickstart, a
//! proactive network-size monitor under churn, gossip-driven load
//! balancing, a sensor fleet with adaptive restart, and a real UDP
//! cluster on localhost.

#![warn(missing_docs)]

pub use epidemic_aggregation as aggregation;
pub use epidemic_common as common;
pub use epidemic_net as net;
pub use epidemic_newscast as newscast;
pub use epidemic_query as query;
pub use epidemic_sim as sim;
pub use epidemic_topology as topology;
